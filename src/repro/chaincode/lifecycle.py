"""Chaincode lifecycle: definitions, installation and instantiation.

A :class:`ChaincodeDefinition` names a chaincode, its version and the
endorsement policy that governs it.  The :class:`ChaincodeRegistry` held
by each channel tracks which definition is instantiated and which peers
have the package installed — a peer can only endorse proposals for
chaincode it has installed, matching Fabric's lifecycle rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.chaincode.shim import Chaincode
from repro.common.errors import ChaincodeError, NotFoundError
from repro.membership.policies import Policy


@dataclass
class ChaincodeDefinition:
    """An instantiated chaincode on a channel."""

    name: str
    version: str
    chaincode: Chaincode
    endorsement_policy: Policy
    installed_on: Set[str] = field(default_factory=set)

    def is_installed_on(self, peer_name: str) -> bool:
        return peer_name in self.installed_on


class ChaincodeRegistry:
    """Per-channel registry of instantiated chaincode definitions."""

    def __init__(self) -> None:
        self._definitions: Dict[str, ChaincodeDefinition] = {}

    def instantiate(
        self,
        name: str,
        version: str,
        chaincode: Chaincode,
        endorsement_policy: Policy,
    ) -> ChaincodeDefinition:
        """Register (or upgrade) a chaincode definition on the channel."""
        existing = self._definitions.get(name)
        if existing is not None and existing.version == version:
            raise ChaincodeError(
                f"chaincode {name!r} version {version!r} is already instantiated"
            )
        installed = existing.installed_on if existing else set()
        definition = ChaincodeDefinition(
            name=name,
            version=version,
            chaincode=chaincode,
            endorsement_policy=endorsement_policy,
            installed_on=set(installed),
        )
        self._definitions[name] = definition
        return definition

    def install_on(self, name: str, peer_name: str) -> None:
        """Mark the chaincode package as installed on ``peer_name``."""
        self.get(name).installed_on.add(peer_name)

    def get(self, name: str) -> ChaincodeDefinition:
        definition = self._definitions.get(name)
        if definition is None:
            raise NotFoundError(f"chaincode {name!r} is not instantiated on this channel")
        return definition

    def find(self, name: str) -> Optional[ChaincodeDefinition]:
        return self._definitions.get(name)

    def names(self) -> Set[str]:
        return set(self._definitions)
