"""Chaincode: the executable ledger logic hosted on every peer.

Fabric chaincode runs in its own container and talks to the peer through
the *shim* API (``GetState``/``PutState``/``GetHistoryForKey``/…).  This
package provides the shim (:mod:`repro.chaincode.shim`), the lifecycle
registry that installs chaincode on peers (:mod:`repro.chaincode.lifecycle`),
the HyperProv on-chain record schema (:mod:`repro.chaincode.records`) and
the HyperProv chaincode implementation (:mod:`repro.chaincode.hyperprov`)
with the same function set the paper's Go chaincode exposes.
"""

from repro.chaincode.shim import Chaincode, ChaincodeStub, ChaincodeResponse
from repro.chaincode.records import ProvenanceRecord
from repro.chaincode.hyperprov import HyperProvChaincode
from repro.chaincode.lifecycle import ChaincodeDefinition, ChaincodeRegistry

__all__ = [
    "Chaincode",
    "ChaincodeStub",
    "ChaincodeResponse",
    "ProvenanceRecord",
    "HyperProvChaincode",
    "ChaincodeDefinition",
    "ChaincodeRegistry",
]
