"""The HyperProv on-chain provenance record.

The paper: "the core data currently stored in the blockchain is the
checksum of every data item, the data location, a certificate pertaining
to who stored the data, a list of other data items that were used to
create an item, and a custom field for any additional metadata."
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.common.errors import ValidationError


@dataclass
class ProvenanceRecord:
    """One version of a data item's provenance metadata, as stored on chain."""

    #: Logical name (ledger key) of the data item, e.g. ``sensor-42/reading``.
    key: str
    #: SHA-256 checksum of the data item's content.
    checksum: str
    #: Pointer into off-chain storage (``ssh://host/path`` style URI).
    location: str
    #: Subject name from the creator's certificate.
    creator: str
    #: The creator's organization (MSP id).
    organization: str
    #: Fingerprint of the creator's certificate as validated by the MSP.
    certificate_fingerprint: str
    #: Ledger keys of the data items this item was derived from.
    dependencies: List[str] = field(default_factory=list)
    #: Free-form, domain-specific metadata.
    metadata: Dict[str, Any] = field(default_factory=dict)
    #: Transaction timestamp (virtual time) when this version was recorded.
    timestamp: float = 0.0
    #: Size of the referenced data item in bytes (informational).
    size_bytes: int = 0

    def validate(self) -> None:
        """Basic schema validation before the record is written on chain."""
        if not self.key:
            raise ValidationError("provenance record requires a non-empty key")
        if not self.checksum or len(self.checksum) != 64:
            raise ValidationError("checksum must be a 64-character SHA-256 hex digest")
        if not self.location:
            raise ValidationError("provenance record requires a data location")
        if not self.creator:
            raise ValidationError("provenance record requires a creator")
        if any(not dep for dep in self.dependencies):
            raise ValidationError("dependency keys must be non-empty")

    def to_json(self) -> str:
        """Serialize to the JSON document stored as the ledger value."""
        return json.dumps(
            {
                "key": self.key,
                "checksum": self.checksum,
                "location": self.location,
                "creator": self.creator,
                "organization": self.organization,
                "certificate_fingerprint": self.certificate_fingerprint,
                "dependencies": list(self.dependencies),
                "metadata": self.metadata,
                "timestamp": self.timestamp,
                "size_bytes": self.size_bytes,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, document: str) -> "ProvenanceRecord":
        """Parse a ledger value back into a record."""
        try:
            data = json.loads(document)
        except (TypeError, json.JSONDecodeError) as exc:
            raise ValidationError(f"malformed provenance record: {exc}") from exc
        return cls(
            key=data.get("key", ""),
            checksum=data.get("checksum", ""),
            location=data.get("location", ""),
            creator=data.get("creator", ""),
            organization=data.get("organization", ""),
            certificate_fingerprint=data.get("certificate_fingerprint", ""),
            dependencies=list(data.get("dependencies", [])),
            metadata=dict(data.get("metadata", {})),
            timestamp=float(data.get("timestamp", 0.0)),
            size_bytes=int(data.get("size_bytes", 0)),
        )

    def matches_checksum(self, checksum: str) -> bool:
        """Whether ``checksum`` equals this record's checksum."""
        return bool(checksum) and checksum == self.checksum
