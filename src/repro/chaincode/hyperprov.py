"""The HyperProv chaincode.

Implements the operator set of the paper's Go chaincode on the Python
shim.  Functions (dispatched by ``stub.function``):

``set``
    Record a new version of a data item: checksum, off-chain location,
    creator certificate, dependency list and custom metadata.
``get``
    Return the latest provenance record for a key.
``getkeyhistory``
    Return every recorded version of a key (operation history), via the
    peer's history index — HyperProv's "lightweight retrieval of
    provenance data".
``checkhash``
    Verify a supplied checksum against the latest on-chain record.
``getbyrange``
    Range query over keys (used by dashboards / audits).
``getdependencies``
    Return the dependency list of the latest record for a key.
``query``
    Rich selector query: return every record whose fields match a JSON
    selector (e.g. ``{"creator": "camera-gw"}``), the CouchDB-style query
    HLF offers when the state database supports it.
``delete``
    Remove the key from the world state (history remains, as in Fabric).

Updates are access-controlled: once a key exists, only clients from the
organization that created it may record new versions or delete it, so one
compromised consortium member cannot overwrite another member's provenance.
Every successful ``set`` also emits a ``provenance_recorded`` chaincode
event that client applications can subscribe to.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.chaincode.records import ProvenanceRecord
from repro.chaincode.shim import Chaincode, ChaincodeResponse, ChaincodeStub
from repro.common.caching import BoundedMemo
from repro.common.errors import ValidationError
from repro.query.planner import PATH_INDEX, build_plan, intersect_keys
from repro.query.selectors import SELECTOR_FIELD_DEFAULTS, compile_selector


class HyperProvChaincode(Chaincode):
    """Chaincode storing and querying HyperProv provenance records."""

    name = "hyperprov"

    #: Functions that only read state (served by a single peer, no ordering).
    QUERY_FUNCTIONS = frozenset(
        {"get", "getkeyhistory", "checkhash", "getbyrange", "getdependencies", "query"}
    )
    #: Functions that write state (require endorsement + ordering + commit).
    INVOKE_FUNCTIONS = frozenset({"set", "delete"})

    #: Name of the chaincode event emitted on every successful ``set``.
    RECORD_EVENT = "provenance_recorded"

    #: Size cap shared by the per-instance memo caches below.
    RECORD_CACHE_MAX = 100_000

    def __init__(self) -> None:
        # Rich queries parse candidate values into documents; a committed
        # value is immutable for a given (key, version), so the parse is
        # memoized across queries (and across the peers sharing this
        # installed chaincode — versions are global commit coordinates,
        # hence the same (key, version) holds the same value on any peer).
        self._record_cache: BoundedMemo = BoundedMemo(self.RECORD_CACHE_MAX)
        # ``set`` builds the same record on every endorsing peer: the
        # invocation is deterministic given the proposal (tx_id, timestamp)
        # and the previous committed value the peer simulated against.
        # Memoize the serialized record/event under exactly those inputs so
        # the n-th endorser skips re-validating and re-serializing an
        # identical record (the simulation itself — reads, writes, ACL
        # checks — still runs).
        self._set_cache: BoundedMemo = BoundedMemo(self.RECORD_CACHE_MAX)
        # Parsed ``set`` arguments (dependencies/metadata JSON) by tx_id:
        # every endorsing peer receives the identical proposal args.
        self._args_cache: BoundedMemo = BoundedMemo(self.RECORD_CACHE_MAX)

    # ------------------------------------------------------------------ init
    def init(self, stub: ChaincodeStub) -> ChaincodeResponse:
        """Instantiate the chaincode; writes a marker key for sanity checks."""
        stub.put_state("__hyperprov_initialized__", "true")
        return ChaincodeResponse.success("hyperprov chaincode instantiated")

    # ---------------------------------------------------------------- invoke
    #: Dispatch table built once at class definition (the per-invocation
    #: dict literal showed up on the endorsement profile).
    _HANDLERS = {
        "set": "_set",
        "get": "_get",
        "getkeyhistory": "_get_key_history",
        "checkhash": "_check_hash",
        "getbyrange": "_get_by_range",
        "getdependencies": "_get_dependencies",
        "query": "_query",
        "delete": "_delete",
        "init": "init",
    }

    def invoke(self, stub: ChaincodeStub) -> ChaincodeResponse:
        handler_name = self._HANDLERS.get(stub.function)
        handler = getattr(self, handler_name) if handler_name else None
        if handler is None:
            return ChaincodeResponse.error(
                f"unknown function {stub.function!r}; "
                f"expected one of {sorted(self._HANDLERS)}"
            )
        try:
            return handler(stub)
        except ValidationError as exc:
            return ChaincodeResponse.error(str(exc))

    # ------------------------------------------------------------- functions
    def _set(self, stub: ChaincodeStub) -> ChaincodeResponse:
        """``set(key, checksum, location, dependencies_json, metadata_json, size)``"""
        if len(stub.args) < 3:
            return ChaincodeResponse.error(
                "set requires at least: key, checksum, location"
            )
        key = stub.args[0]
        checksum = stub.args[1]
        location = stub.args[2]
        parsed_args = self._args_cache.get(stub.tx_id)
        if parsed_args is None:
            dependencies: List[str] = []
            metadata = {}
            size_bytes = 0
            if len(stub.args) > 3 and stub.args[3]:
                dependencies = json.loads(stub.args[3])
            if len(stub.args) > 4 and stub.args[4]:
                metadata = json.loads(stub.args[4])
            if len(stub.args) > 5 and stub.args[5]:
                size_bytes = int(stub.args[5])
            self._args_cache[stub.tx_id] = (dependencies, metadata, size_bytes)
        else:
            # Shared read-only across this tx's endorsers; ``metadata`` is
            # copied below before the one place that mutates it.
            dependencies, metadata, size_bytes = parsed_args

        creator = stub.get_creator()
        if creator is None:
            return ChaincodeResponse.error("set requires a creator certificate")

        # Read the current version of the key (if any).  Besides letting the
        # new record link back to its predecessor, the read makes concurrent
        # updates of the same key MVCC-conflict at commit time, so exactly
        # one writer wins per block — the history index never interleaves
        # half-applied updates.
        previous_raw = stub.get_state(key)
        if previous_raw is not None:
            previous = ProvenanceRecord.from_json(previous_raw)
            if previous.organization and previous.organization != creator.organization:
                return ChaincodeResponse.error(
                    f"key {key!r} is owned by organization "
                    f"{previous.organization!r}; {creator.organization!r} may not update it"
                )
            metadata = dict(metadata)
            metadata.setdefault("previous_checksum", previous.checksum)

        # Dependencies must already exist on chain — lineage cannot point at
        # unrecorded items.  The reads also make the transaction conflict if
        # a dependency is concurrently deleted.
        for dependency in dependencies:
            if stub.get_state(dependency) is None:
                return ChaincodeResponse.error(
                    f"dependency {dependency!r} is not recorded on the ledger"
                )

        # The timestamp is part of the key: a retried submission reuses its
        # tx_id but carries the retry attempt's proposal timestamp, and the
        # memoized record must reflect the attempt actually endorsed.
        cache_key = (stub.tx_id, stub.get_tx_timestamp(), previous_raw)
        cached_set = self._set_cache.get(cache_key)
        if cached_set is None:
            record = ProvenanceRecord(
                key=key,
                checksum=checksum,
                location=location,
                creator=creator.subject,
                organization=creator.organization,
                certificate_fingerprint=creator.fingerprint,
                dependencies=dependencies,
                metadata=metadata,
                timestamp=stub.get_tx_timestamp(),
                size_bytes=size_bytes,
            )
            record.validate()
            event_json = json.dumps(
                {"key": key, "checksum": checksum, "creator": creator.subject}
            )
            cached_set = (record.to_json(), event_json)
            self._set_cache[cache_key] = cached_set
        record_json, event_json = cached_set
        stub.put_state(key, record_json)
        stub.set_event(self.RECORD_EVENT, event_json)
        return ChaincodeResponse.success(record_json)

    def _get(self, stub: ChaincodeStub) -> ChaincodeResponse:
        """``get(key)`` — the latest provenance record for a key."""
        if not stub.args:
            return ChaincodeResponse.error("get requires a key argument")
        value = stub.get_state(stub.args[0])
        if value is None:
            return ChaincodeResponse.error(f"key {stub.args[0]!r} not found")
        return ChaincodeResponse.success(value)

    def _get_key_history(self, stub: ChaincodeStub) -> ChaincodeResponse:
        """``getkeyhistory(key)`` — every committed version of a key."""
        if not stub.args:
            return ChaincodeResponse.error("getkeyhistory requires a key argument")
        entries = stub.get_history_for_key(stub.args[0])
        if not entries:
            return ChaincodeResponse.error(f"no history for key {stub.args[0]!r}")
        history = [
            {
                "tx_id": entry.tx_id,
                "block": entry.block_number,
                "timestamp": entry.timestamp,
                "is_delete": entry.is_delete,
                "value": entry.value,
            }
            for entry in entries
        ]
        return ChaincodeResponse.success(json.dumps(history))

    def _check_hash(self, stub: ChaincodeStub) -> ChaincodeResponse:
        """``checkhash(key, checksum)`` — verify data integrity against the chain."""
        if len(stub.args) < 2:
            return ChaincodeResponse.error("checkhash requires key and checksum")
        value = stub.get_state(stub.args[0])
        if value is None:
            return ChaincodeResponse.error(f"key {stub.args[0]!r} not found")
        record = ProvenanceRecord.from_json(value)
        matches = record.matches_checksum(stub.args[1])
        return ChaincodeResponse.success(json.dumps({"matches": matches}))

    def _get_by_range(self, stub: ChaincodeStub) -> ChaincodeResponse:
        """``getbyrange(start_key, end_key[, limit[, bookmark]])``.

        Committed records in a key range.  The two-argument form returns
        the plain row list (the historical surface).  With a ``limit``
        (and optionally a ``bookmark`` — the last key of the previous
        page) the response is a ``{"records", "bookmark"}`` envelope: the
        bookmark is non-null exactly when the page filled, and feeding it
        back resumes strictly after it.
        """
        start_key = stub.args[0] if stub.args else ""
        end_key = stub.args[1] if len(stub.args) > 1 else ""
        if len(stub.args) <= 2:
            results = stub.get_state_by_range(start_key, end_key)
            payload = [{"key": key, "record": value} for key, value in results]
            return ChaincodeResponse.success(json.dumps(payload))
        try:
            limit = int(stub.args[2]) if stub.args[2] else 0
        except ValueError:
            return ChaincodeResponse.error("getbyrange limit must be an integer")
        if limit < 0:
            return ChaincodeResponse.error("getbyrange limit must be >= 0")
        bookmark = stub.args[3] if len(stub.args) > 3 else ""
        records = []
        truncated = False
        for key, value in stub.iter_state_by_range(start_key, end_key, bookmark):
            if key.startswith("__"):
                continue
            records.append({"key": key, "record": value})
            if limit and len(records) >= limit:
                truncated = True
                break
        envelope = {
            "records": records,
            "bookmark": records[-1]["key"] if truncated else None,
        }
        return ChaincodeResponse.success(json.dumps(envelope))

    def _get_dependencies(self, stub: ChaincodeStub) -> ChaincodeResponse:
        """``getdependencies(key)`` — the dependency list of the latest record."""
        if not stub.args:
            return ChaincodeResponse.error("getdependencies requires a key argument")
        value = stub.get_state(stub.args[0])
        if value is None:
            return ChaincodeResponse.error(f"key {stub.args[0]!r} not found")
        record = ProvenanceRecord.from_json(value)
        return ChaincodeResponse.success(json.dumps(record.dependencies))

    def _query(self, stub: ChaincodeStub) -> ChaincodeResponse:
        """``query(selector_json)`` — records whose fields match the selector.

        The selector is a flat JSON object; a record matches when every
        selector field equals the corresponding record field (``metadata.*``
        selectors match inside the custom metadata map).  Mirrors the rich
        queries HLF supports with a CouchDB state database.

        Reserved selector fields:

        ``_prefix``
            Scope the scan: only keys starting with the prefix are
            considered (the equivalent of a CouchDB composite-key index).
        ``_limit`` / ``_bookmark``
            Paginate: return at most ``_limit`` matches, resuming
            strictly after the ``_bookmark`` key.  Responses become a
            ``{"records", "bookmark"}`` envelope; the bookmark is
            non-null exactly when the page filled.
        ``_explain``
            Embed the planner's chosen access path in the envelope as
            ``"plan"``.

        Access-path choice is delegated to :mod:`repro.query.planner`:
        when the peer's world state carries field-value secondary indexes
        the selector's equality fields are served by posting-list
        intersection, otherwise by the prefix run or a full scan.  Every
        path visits candidates in key order, costs one state operation
        and applies the same compiled predicates, so the returned rows —
        and the query's virtual-time cost — are identical with indexes
        on or off.
        """
        if not stub.args or not stub.args[0]:
            return ChaincodeResponse.error("query requires a JSON selector argument")
        try:
            selector = json.loads(stub.args[0])
        except json.JSONDecodeError as exc:
            return ChaincodeResponse.error(f"malformed selector: {exc}")
        if not isinstance(selector, dict) or not selector:
            return ChaincodeResponse.error("selector must be a non-empty JSON object")

        prefix = selector.pop("_prefix", None)
        if prefix is not None and not isinstance(prefix, str):
            return ChaincodeResponse.error("_prefix must be a string")
        limit = selector.pop("_limit", None)
        if limit is not None and (not isinstance(limit, int) or isinstance(limit, bool) or limit < 0):
            return ChaincodeResponse.error("_limit must be a non-negative integer")
        bookmark = selector.pop("_bookmark", None)
        if bookmark is not None and not isinstance(bookmark, str):
            return ChaincodeResponse.error("_bookmark must be a string")
        explain = selector.pop("_explain", None)
        if explain is not None and not isinstance(explain, bool):
            return ChaincodeResponse.error("_explain must be a boolean")
        if not selector and not prefix:
            return ChaincodeResponse.error("selector must be a non-empty JSON object")
        paginated = limit is not None or bookmark is not None or bool(explain)
        prefix = prefix or ""
        limit = limit or 0
        bookmark = bookmark or ""

        world_state = stub.world_state
        plan = build_plan(
            selector,
            index=world_state.secondary_index,
            total_keys=len(world_state),
            prefix=prefix,
            prefix_keys=world_state.prefix_key_estimate(prefix) if prefix else None,
            limit=limit,
            bookmark=bookmark,
        )
        if plan.access_path == PATH_INDEX:
            keys = intersect_keys(world_state.secondary_index, plan, selector)
            candidates = stub.get_state_by_keys(keys)
        elif paginated:
            # The lazy scan: a bookmark+limit page stops as soon as it
            # fills instead of materialising the whole prefix run.
            candidates = stub.iter_state_by_prefix(prefix, bookmark)
        elif prefix:
            candidates = stub.get_state_by_prefix(prefix)
        else:
            candidates = stub.get_state_by_range("", "")

        # Compile the residual predicates once; the per-candidate loop
        # then runs the pre-dispatched checks.  Index-served equalities
        # are already guaranteed by the posting intersection.
        residual = {name: selector[name] for name in plan.residual_fields}
        compiled = self._compile_selector(residual)
        matches = []
        truncated = False
        for key, value in candidates:
            if key.startswith("__"):
                continue
            document = self._parse_record(stub, key, value)
            if document is None:
                continue
            if all(check(document) for check in compiled):
                matches.append({"key": key, "record": value})
                if limit and len(matches) >= limit:
                    truncated = True
                    break
        if not paginated:
            return ChaincodeResponse.success(json.dumps(matches))
        envelope = {
            "records": matches,
            "bookmark": matches[-1]["key"] if truncated else None,
        }
        if explain:
            envelope["plan"] = plan.explain()
        return ChaincodeResponse.success(json.dumps(envelope))

    def _parse_record(
        self, stub: ChaincodeStub, key: str, value: str
    ) -> Optional[Dict]:
        """Parse a candidate ledger value, memoized by (key, version)."""
        version = stub.world_state.get_version(key)
        cache_key = (key, version)
        if version is not None:
            document = self._record_cache.get(cache_key)
            if document is not None:
                return document
        try:
            document = json.loads(value)
        except (TypeError, json.JSONDecodeError):
            return None
        if not isinstance(document, dict):
            return None
        if version is not None:
            self._record_cache[cache_key] = document
        return document

    #: Selector field defaults, shared with the query subsystem (kept as a
    #: class attribute for the historical surface).
    _SELECTOR_FIELD_DEFAULTS = SELECTOR_FIELD_DEFAULTS

    @classmethod
    def _compile_selector(cls, selector: dict) -> List:
        """Turn a selector into per-document predicate callables.

        Delegates to :func:`repro.query.selectors.compile_selector` — the
        single definition of match semantics shared with the planner's
        residual filter and the continuous-query registry.
        """
        return compile_selector(selector)


    def _delete(self, stub: ChaincodeStub) -> ChaincodeResponse:
        """``delete(key)`` — remove the key from the world state.

        Only the owning organization (the one that recorded the key) may
        delete it.
        """
        if not stub.args:
            return ChaincodeResponse.error("delete requires a key argument")
        current_raw = stub.get_state(stub.args[0])
        if current_raw is None:
            return ChaincodeResponse.error(f"key {stub.args[0]!r} not found")
        creator = stub.get_creator()
        current = ProvenanceRecord.from_json(current_raw)
        if creator is not None and current.organization and \
                current.organization != creator.organization:
            return ChaincodeResponse.error(
                f"key {stub.args[0]!r} is owned by organization "
                f"{current.organization!r}; {creator.organization!r} may not delete it"
            )
        stub.del_state(stub.args[0])
        return ChaincodeResponse.success(json.dumps({"deleted": stub.args[0]}))
