"""The chaincode shim: the interface chaincode uses to touch the ledger.

During endorsement the peer *simulates* the invocation: reads go to the
committed world state (and are recorded with their versions in the read
set), writes are buffered into the write set and only become visible when
the transaction commits.  The stub also exposes the submitting client's
certificate (``get_creator``) and the key-history index, both of which the
HyperProv chaincode relies on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ChaincodeError
from repro.crypto.certificates import Certificate
from repro.ledger.history import HistoryDatabase, HistoryEntry
from repro.ledger.transaction import ReadWriteSet
from repro.ledger.world_state import WorldState


@dataclass
class ChaincodeResponse:
    """Result of a chaincode invocation."""

    status: int
    payload: Optional[str] = None
    message: str = ""

    OK = 200
    ERROR = 500

    @classmethod
    def success(cls, payload: Optional[str] = None) -> "ChaincodeResponse":
        return cls(status=cls.OK, payload=payload)

    @classmethod
    def error(cls, message: str) -> "ChaincodeResponse":
        return cls(status=cls.ERROR, message=message)

    @property
    def is_ok(self) -> bool:
        return self.status == self.OK


@dataclass
class ChaincodeStub:
    """Per-invocation view of the ledger handed to the chaincode."""

    tx_id: str
    channel: str
    function: str
    args: List[str]
    world_state: WorldState
    history: HistoryDatabase
    creator: Optional[Certificate] = None
    timestamp: float = 0.0
    rw_set: ReadWriteSet = field(default_factory=ReadWriteSet)
    #: Number of shim calls made (used by the device model to charge time).
    state_operations: int = 0
    #: Chaincode event set by the invocation, as ``(name, payload)``.
    event: Optional[Tuple[str, str]] = None
    _pending_writes: Dict[str, Optional[str]] = field(default_factory=dict)

    # ------------------------------------------------------------- state API
    def get_state(self, key: str) -> Optional[str]:
        """Read the latest committed value of ``key`` (read-your-own-writes
        within the same invocation is supported, like Fabric's simulator)."""
        self.state_operations += 1
        if key in self._pending_writes:
            return self._pending_writes[key]
        entry = self.world_state.get(key)
        self.rw_set.add_read(key, entry.version if entry else None)
        return entry.value if entry else None

    def put_state(self, key: str, value: str) -> None:
        """Buffer a write; it is applied only if the transaction commits."""
        if not key:
            raise ChaincodeError("cannot put_state with an empty key")
        self.state_operations += 1
        self._pending_writes[key] = value
        self.rw_set.add_write(key, value)

    def del_state(self, key: str) -> None:
        """Buffer a deletion of ``key``."""
        self.state_operations += 1
        self._pending_writes[key] = None
        self.rw_set.add_write(key, None, is_delete=True)

    def get_state_by_range(self, start_key: str, end_key: str) -> List[Tuple[str, str]]:
        """Committed key range query (``end_key`` empty = to the end)."""
        self.state_operations += 1
        entries = self.world_state.range_query_versioned(start_key, end_key)
        self.rw_set.extend_reads([(key, entry.version) for key, entry in entries])
        return [(key, entry.value) for key, entry in entries]

    def get_state_by_prefix(self, prefix: str) -> List[Tuple[str, str]]:
        """Committed keys starting with ``prefix`` (composite-key lookups).

        Served from the world state's prefix index, so a prefix-scoped
        rich query only reads its candidate keys instead of the whole key
        space.
        """
        self.state_operations += 1
        entries = self.world_state.query_by_prefix_versioned(prefix)
        self.rw_set.extend_reads([(key, entry.version) for key, entry in entries])
        return [(key, entry.value) for key, entry in entries]

    def get_state_by_keys(self, keys: List[str]) -> List[Tuple[str, str]]:
        """Committed values for an explicit candidate key list.

        The index-path read: the planner hands over the (sorted) keys
        surviving a posting-list intersection and this fetches them in one
        shim call.  Like the range/prefix scans it costs exactly **one**
        state operation and records a read per returned key — a query
        keeps the same virtual-time cost whichever access path serves it.
        Missing keys (deleted since indexing) are skipped.
        """
        self.state_operations += 1
        results: List[Tuple[str, str]] = []
        reads: List[Tuple[str, object]] = []
        world_state = self.world_state
        for key in keys:
            entry = world_state.get(key)
            if entry is None:
                continue
            reads.append((key, entry.version))
            results.append((key, entry.value))
        self.rw_set.extend_reads(reads)
        return results

    def iter_state_by_prefix(
        self, prefix: str, start_after: str = ""
    ) -> Iterator[Tuple[str, str]]:
        """Lazy prefix scan, optionally resuming strictly after a bookmark.

        The paginated counterpart of :meth:`get_state_by_prefix`: yields
        ``(key, value)`` in key order without materialising the whole
        run, so a bookmark+limit page only touches the rows it returns.
        An empty ``prefix`` walks the full key space (the paginated form
        of ``get_state_by_range("", "")``).  One state operation charged
        up front, reads recorded as rows are consumed.
        """
        self.state_operations += 1
        return self._record_reads(
            self.world_state.iter_by_prefix_versioned(prefix, start_after)
        )

    def iter_state_by_range(
        self, start_key: str, end_key: str, start_after: str = ""
    ) -> Iterator[Tuple[str, str]]:
        """Lazy range scan, optionally resuming strictly after a bookmark."""
        self.state_operations += 1
        return self._record_reads(
            self.world_state.iter_by_range_versioned(start_key, end_key, start_after)
        )

    def _record_reads(self, entries) -> Iterator[Tuple[str, str]]:
        for key, entry in entries:
            self.rw_set.add_read(key, entry.version)
            yield key, entry.value

    def get_history_for_key(self, key: str) -> List[HistoryEntry]:
        """Every committed modification of ``key``, oldest first."""
        self.state_operations += 1
        return self.history.history_for_key(key)

    # ---------------------------------------------------------------- events
    def set_event(self, name: str, payload: str = "") -> None:
        """Attach a chaincode event to this invocation (at most one, like Fabric)."""
        if not name:
            raise ChaincodeError("chaincode event name cannot be empty")
        self.event = (name, payload)

    # --------------------------------------------------------------- context
    def get_creator(self) -> Optional[Certificate]:
        """The certificate of the client that submitted the proposal."""
        return self.creator

    def get_tx_timestamp(self) -> float:
        return self.timestamp

    def get_args(self) -> List[str]:
        return [self.function] + list(self.args)


class Chaincode(ABC):
    """Base class for chaincode implementations."""

    #: Name under which the chaincode is installed.
    name: str = "chaincode"

    @abstractmethod
    def init(self, stub: ChaincodeStub) -> ChaincodeResponse:
        """Called once when the chaincode is instantiated on a channel."""

    @abstractmethod
    def invoke(self, stub: ChaincodeStub) -> ChaincodeResponse:
        """Dispatch an invocation; ``stub.function`` selects the operation."""
