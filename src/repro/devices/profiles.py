"""Calibrated hardware profiles for the paper's two testbeds.

Calibration notes
-----------------
* SHA-256 throughput: a modern x86-64 core hashes roughly 300-400 MB/s
  single-threaded with OpenSSL; the Cortex-A53 in the RPi 3B+ (no ARMv8
  crypto extensions enabled in the 2019-era Debian builds) manages around
  35-50 MB/s.
* ECDSA P-256 sign/verify: sub-millisecond on x86-64, a few milliseconds
  on the RPi — dominated by Fabric's Go crypto in practice.
* Chaincode invocation overhead: Fabric's chaincode runs in a separate
  Docker container; each invocation costs a few milliseconds of IPC and
  marshaling on desktop hardware and tens of milliseconds on the RPi
  (this is the dominant term in the paper's RPi latency numbers).
* Power: the paper reports an idle-with-HLF RPi at 2.71 W and a peak of
  3.64 W, only ~10.7 % above idle on average — the RPi power envelope is
  calibrated to land in that band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.errors import ConfigurationError, NotFoundError
from repro.network.link import LinkProfile, GIGABIT_LAN, RPI_LAN


@dataclass(frozen=True)
class HardwareProfile:
    """Static performance and power characteristics of one machine type."""

    name: str
    architecture: str
    cpu_model: str
    clock_ghz: float
    cores: int
    #: Relative single-core speed (Xeon E5-1603 = 1.0); scales fixed software costs.
    cpu_speed_factor: float
    #: SHA-256 hashing throughput, bytes per second (single core).
    hash_rate_bytes_per_s: float
    #: Time to produce one signature, seconds.
    sign_time_s: float
    #: Time to verify one signature, seconds.
    verify_time_s: float
    #: Fixed overhead per chaincode invocation (container IPC, marshaling), seconds.
    chaincode_invoke_overhead_s: float
    #: Per state read/write inside chaincode, seconds.
    state_op_time_s: float
    #: Sequential disk write throughput, bytes per second.
    disk_write_bytes_per_s: float
    #: Sequential disk read throughput, bytes per second.
    disk_read_bytes_per_s: float
    #: Network interface profile.
    nic: LinkProfile
    #: Idle power draw, watts (OS running, no HLF).
    idle_power_w: float
    #: Additional baseline draw with HLF containers running but idle, watts.
    hlf_baseline_power_w: float
    #: Power draw at 100 % CPU utilization, watts.
    max_power_w: float
    #: Relative run-to-run variance of service times (RPi shows more).
    variance_fraction: float = 0.05

    def validate(self) -> None:
        if self.cpu_speed_factor <= 0:
            raise ConfigurationError("cpu_speed_factor must be positive")
        if self.hash_rate_bytes_per_s <= 0:
            raise ConfigurationError("hash_rate_bytes_per_s must be positive")
        if self.max_power_w < self.idle_power_w:
            raise ConfigurationError("max power cannot be below idle power")
        if not 0 <= self.variance_fraction < 1:
            raise ConfigurationError("variance_fraction must be in [0, 1)")

    @property
    def dynamic_power_range_w(self) -> float:
        """Watts between idle and fully loaded."""
        return self.max_power_w - self.idle_power_w


XEON_E5_1603 = HardwareProfile(
    name="xeon-e5-1603",
    architecture="x86-64",
    cpu_model="Intel Xeon E5-1603 @ 2.80GHz",
    clock_ghz=2.8,
    cores=4,
    cpu_speed_factor=1.0,
    hash_rate_bytes_per_s=330e6,
    sign_time_s=0.0004,
    verify_time_s=0.0009,
    chaincode_invoke_overhead_s=0.004,
    state_op_time_s=0.0006,
    disk_write_bytes_per_s=420e6,
    disk_read_bytes_per_s=500e6,
    nic=GIGABIT_LAN,
    idle_power_w=48.0,
    hlf_baseline_power_w=4.0,
    max_power_w=135.0,
    variance_fraction=0.04,
)

CORE_I7_4700MQ = HardwareProfile(
    name="core-i7-4700mq",
    architecture="x86-64",
    cpu_model="Intel Core i7-4700MQ @ 2.40GHz",
    clock_ghz=2.4,
    cores=4,
    cpu_speed_factor=1.1,
    hash_rate_bytes_per_s=380e6,
    sign_time_s=0.00035,
    verify_time_s=0.0008,
    chaincode_invoke_overhead_s=0.0035,
    state_op_time_s=0.00055,
    disk_write_bytes_per_s=450e6,
    disk_read_bytes_per_s=520e6,
    nic=GIGABIT_LAN,
    idle_power_w=22.0,
    hlf_baseline_power_w=2.5,
    max_power_w=65.0,
    variance_fraction=0.04,
)

CORE_I3_2310M = HardwareProfile(
    name="core-i3-2310m",
    architecture="x86-64",
    cpu_model="Intel Core i3-2310M @ 2.10GHz",
    clock_ghz=2.1,
    cores=2,
    cpu_speed_factor=0.7,
    hash_rate_bytes_per_s=230e6,
    sign_time_s=0.0006,
    verify_time_s=0.0013,
    chaincode_invoke_overhead_s=0.006,
    state_op_time_s=0.0009,
    disk_write_bytes_per_s=260e6,
    disk_read_bytes_per_s=320e6,
    nic=GIGABIT_LAN,
    idle_power_w=18.0,
    hlf_baseline_power_w=2.0,
    max_power_w=45.0,
    variance_fraction=0.05,
)

RASPBERRY_PI_3B_PLUS = HardwareProfile(
    name="raspberry-pi-3b-plus",
    architecture="arm64",
    cpu_model="Broadcom BCM2837B0 Cortex-A53 @ 1.4GHz",
    clock_ghz=1.4,
    cores=4,
    cpu_speed_factor=0.18,
    hash_rate_bytes_per_s=42e6,
    sign_time_s=0.0045,
    verify_time_s=0.009,
    chaincode_invoke_overhead_s=0.045,
    state_op_time_s=0.006,
    disk_write_bytes_per_s=18e6,
    disk_read_bytes_per_s=40e6,
    nic=RPI_LAN,
    idle_power_w=2.65,
    hlf_baseline_power_w=0.06,
    max_power_w=5.7,
    variance_fraction=0.15,
)

#: The four desktop machines of the paper's first setup, in the paper's order.
DESKTOP_PROFILES: Tuple[HardwareProfile, ...] = (
    XEON_E5_1603,
    XEON_E5_1603,
    CORE_I7_4700MQ,
    CORE_I3_2310M,
)

#: The four Raspberry Pi devices of the paper's second setup.
RPI_PROFILES: Tuple[HardwareProfile, ...] = (RASPBERRY_PI_3B_PLUS,) * 4

_ALL_PROFILES: Dict[str, HardwareProfile] = {
    profile.name: profile
    for profile in (XEON_E5_1603, CORE_I7_4700MQ, CORE_I3_2310M, RASPBERRY_PI_3B_PLUS)
}


def profile_by_name(name: str) -> HardwareProfile:
    """Look up a built-in hardware profile by its ``name`` field."""
    profile = _ALL_PROFILES.get(name)
    if profile is None:
        raise NotFoundError(
            f"unknown hardware profile {name!r}; available: {sorted(_ALL_PROFILES)}"
        )
    return profile
