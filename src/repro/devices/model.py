"""Device model: converts work into virtual time and busy intervals.

Every simulated node (peer, orderer, client host, storage server) owns a
:class:`DeviceModel`.  Protocol components ask it how long an operation
takes (hashing a payload, signing, invoking chaincode, writing to disk);
the model applies the hardware profile, adds deterministic jitter, records
the busy interval for energy accounting, and returns the duration.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from repro.devices.profiles import HardwareProfile
from repro.simulation.randomness import DeterministicRandom
from repro.simulation.resources import SimResource, interval_overlap


class BusyInterval(NamedTuple):
    """A span of virtual time during which a component was busy.

    A ``NamedTuple`` — every simulated charge appends one, so
    construction cost is on the hot path (the energy meter reads them in
    bulk afterwards).
    """

    start: float
    end: float
    component: str
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class DeviceModel:
    """Stateful model of one machine.

    Durations are computed from the hardware profile with multiplicative
    jitter drawn from a per-device random stream; busy intervals are
    recorded per component (``cpu``, ``disk``, ``nic``) so the energy meter
    can compute utilization over arbitrary windows.
    """

    def __init__(
        self,
        name: str,
        profile: HardwareProfile,
        rng: Optional[DeterministicRandom] = None,
        hlf_running: bool = True,
    ) -> None:
        profile.validate()
        self.name = name
        self.profile = profile
        self._rng = rng or DeterministicRandom(17)
        #: Whether the HLF containers (peer/orderer/client) are running on
        #: this device — adds the HLF baseline power draw in the energy model.
        self.hlf_running = hlf_running
        self.cpu = SimResource(f"{name}.cpu", concurrency=profile.cores)
        self.disk = SimResource(f"{name}.disk", concurrency=1)
        self.nic = SimResource(f"{name}.nic", concurrency=1)
        self._components = {"cpu": self.cpu, "disk": self.disk, "nic": self.nic}
        self._busy_intervals: List[BusyInterval] = []

    # ------------------------------------------------------------- durations
    def _jitter(self, mean: float) -> float:
        return self._rng.gaussian_jitter(mean, self.profile.variance_fraction)

    def hash_time(self, payload_bytes: int) -> float:
        """Time to SHA-256 a payload of ``payload_bytes``."""
        base = payload_bytes / self.profile.hash_rate_bytes_per_s
        return self._jitter(base)

    def sign_time(self) -> float:
        """Time to produce one signature."""
        return self._jitter(self.profile.sign_time_s)

    def verify_time(self, count: int = 1) -> float:
        """Time to verify ``count`` signatures."""
        return self._jitter(self.profile.verify_time_s * count)

    def chaincode_time(self, state_operations: int, payload_bytes: int = 0) -> float:
        """Time for one chaincode invocation with ``state_operations`` get/put calls."""
        base = (
            self.profile.chaincode_invoke_overhead_s
            + state_operations * self.profile.state_op_time_s
            + payload_bytes / self.profile.hash_rate_bytes_per_s * 0.1
        )
        return self._jitter(base)

    def disk_write_time(self, payload_bytes: int) -> float:
        """Time to persist ``payload_bytes`` to local storage."""
        return self._jitter(payload_bytes / self.profile.disk_write_bytes_per_s)

    def disk_read_time(self, payload_bytes: int) -> float:
        """Time to read ``payload_bytes`` from local storage."""
        return self._jitter(payload_bytes / self.profile.disk_read_bytes_per_s)

    def serialization_time(self, payload_bytes: int) -> float:
        """CPU time to marshal/unmarshal a payload (protobuf/JSON handling)."""
        return self._jitter(payload_bytes / (self.profile.hash_rate_bytes_per_s * 4.0))

    # --------------------------------------------------------------- accrual
    def occupy(
        self, component: str, start: float, duration: float, label: str = ""
    ) -> Tuple[float, float]:
        """Reserve a component for ``duration`` starting no earlier than ``start``.

        Returns the actual ``(start, end)`` of the busy interval, which may
        begin later than requested if the component was already busy
        (queueing on the single chaincode container, disk, etc.).
        """
        resource = self._components.get(component)
        if resource is None:
            raise ValueError(f"unknown device component {component!r}")
        if duration <= 0:
            return (start, start)
        reservation = resource.reserve(start, duration)
        self._busy_intervals.append(
            BusyInterval(
                start=reservation.start,
                end=reservation.end,
                component=component,
                label=label,
            )
        )
        return (reservation.start, reservation.end)

    def charge_cpu(self, start: float, duration: float, label: str = "") -> Tuple[float, float]:
        """Shorthand for occupying the CPU."""
        return self.occupy("cpu", start, duration, label)

    # ------------------------------------------------------------ accounting
    @property
    def busy_intervals(self) -> List[BusyInterval]:
        return list(self._busy_intervals)

    def busy_time(
        self,
        window: Optional[Tuple[float, float]] = None,
        component: Optional[str] = None,
    ) -> float:
        """Total busy seconds, optionally restricted to a window / component.

        Concurrent busy intervals on different cores are summed, so the
        result can exceed the window length; utilization normalizes by the
        core count.
        """
        total = 0.0
        for interval in self._busy_intervals:
            if component is not None and interval.component != component:
                continue
            if window is None:
                total += interval.duration
            else:
                total += interval_overlap((interval.start, interval.end), window)
        return total

    def utilization(self, window: Tuple[float, float], component: str = "cpu") -> float:
        """Average utilization of a component over ``window`` (0..1)."""
        start, end = window
        length = end - start
        if length <= 0:
            return 0.0
        capacity = {
            "cpu": self.profile.cores,
            "disk": 1,
            "nic": 1,
        }.get(component, 1)
        busy = self.busy_time(window=window, component=component)
        return min(1.0, busy / (length * capacity))

    def reset_accounting(self) -> None:
        """Clear busy intervals and resource reservations (between runs)."""
        self._busy_intervals.clear()
        self.cpu.reset()
        self.disk.reset()
        self.nic.reset()
