"""Hardware device models.

The paper evaluates HyperProv on two testbeds:

* a desktop setup — 2× Intel Xeon E5-1603 (2.80 GHz), 1× Core i7-4700MQ
  (2.40 GHz), 1× Core i3-2310M (2.10 GHz), all with SSDs on a gigabit
  switch, and
* an edge setup — 4× Raspberry Pi 3B+ (Cortex-A53 @ 1.4 GHz, ARM64).

This package provides calibrated :class:`~repro.devices.profiles.HardwareProfile`
objects for each machine and a :class:`~repro.devices.model.DeviceModel`
that converts work (hashing, signing, chaincode execution, disk and
network I/O) into virtual time and busy intervals for energy accounting.
"""

from repro.devices.profiles import (
    HardwareProfile,
    XEON_E5_1603,
    CORE_I7_4700MQ,
    CORE_I3_2310M,
    RASPBERRY_PI_3B_PLUS,
    DESKTOP_PROFILES,
    RPI_PROFILES,
    profile_by_name,
)
from repro.devices.model import DeviceModel, BusyInterval

__all__ = [
    "HardwareProfile",
    "XEON_E5_1603",
    "CORE_I7_4700MQ",
    "CORE_I3_2310M",
    "RASPBERRY_PI_3B_PLUS",
    "DESKTOP_PROFILES",
    "RPI_PROFILES",
    "profile_by_name",
    "DeviceModel",
    "BusyInterval",
]
