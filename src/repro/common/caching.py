"""Small caching primitives shared by the hot-path memos."""

from __future__ import annotations


class BoundedMemo(dict):
    """A dict memo with a size cap, cleared wholesale when full.

    The hot-path memos (signature verification, rw-set digests, parsed
    records) want O(1) amortized inserts with a hard memory bound and no
    per-hit bookkeeping; dropping everything on overflow is cheaper than
    LRU and the caches re-warm in one pass.  Not thread-safe — the
    simulation is single-threaded by design.
    """

    __slots__ = ("cap",)

    def __init__(self, cap: int) -> None:
        super().__init__()
        if cap < 1:
            raise ValueError("BoundedMemo cap must be >= 1")
        self.cap = cap

    def __setitem__(self, key, value) -> None:
        if len(self) >= self.cap and key not in self:
            self.clear()
        super().__setitem__(key, value)
