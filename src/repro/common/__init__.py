"""Shared utilities used by every HyperProv subsystem.

The :mod:`repro.common` package intentionally has no dependencies on the
rest of the code base.  It provides:

* structured exception hierarchy (:mod:`repro.common.errors`),
* deterministic identifier generation (:mod:`repro.common.ids`),
* hashing / checksum helpers (:mod:`repro.common.hashing`),
* canonical serialization (:mod:`repro.common.serialization`),
* configuration dataclasses (:mod:`repro.common.config`),
* a tiny synchronous event bus (:mod:`repro.common.events`),
* a metrics registry for counters/gauges/histograms
  (:mod:`repro.common.metrics`).
"""

from repro.common.errors import (
    HyperProvError,
    ConfigurationError,
    ValidationError,
    NotFoundError,
    DuplicateError,
    EndorsementError,
    OrderingError,
    StorageError,
    NetworkError,
    CryptoError,
    ChaincodeError,
    SimulationError,
)
from repro.common.hashing import sha256_hex, sha256_bytes, checksum_of, HashChain
from repro.common.ids import IdGenerator, short_uid
from repro.common.serialization import canonical_json, from_canonical_json
from repro.common.events import EventBus, Subscription
from repro.common.metrics import MetricsRegistry, Counter, Gauge, Histogram

__all__ = [
    "HyperProvError",
    "ConfigurationError",
    "ValidationError",
    "NotFoundError",
    "DuplicateError",
    "EndorsementError",
    "OrderingError",
    "StorageError",
    "NetworkError",
    "CryptoError",
    "ChaincodeError",
    "SimulationError",
    "sha256_hex",
    "sha256_bytes",
    "checksum_of",
    "HashChain",
    "IdGenerator",
    "short_uid",
    "canonical_json",
    "from_canonical_json",
    "EventBus",
    "Subscription",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
]
