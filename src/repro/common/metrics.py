"""Lightweight metrics registry (counters, gauges, histograms).

Every node, the client library and the benchmark harness record their
observations here.  The registry is plain in-memory data with summary
helpers — enough to regenerate the paper's tables without an external
metrics stack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def percentile(samples: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile of ``samples``, ``pct`` in [0, 100].

    The single shared implementation used by :class:`Histogram` and the
    benchmark harness (``RunResult``), so every reported percentile uses
    the same method.  Returns ``0.0`` for an empty sample set.
    """
    if not samples:
        return 0.0
    if not 0.0 <= pct <= 100.0:
        raise ValueError("percentile must be within [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


@dataclass
class Counter:
    """Monotonically increasing counter."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter; ``amount`` must not be negative."""
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (queue depth, power draw, ...)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


@dataclass
class Histogram:
    """Stores every observation; adequate for benchmark-scale sample counts."""

    name: str
    samples: List[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return float(sum(self.samples))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    @property
    def stddev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mean = self.mean
        variance = sum((x - mean) ** 2 for x in self.samples) / (len(self.samples) - 1)
        return math.sqrt(variance)

    def percentile(self, pct: float) -> float:
        """Linear-interpolated percentile, ``pct`` in [0, 100]."""
        return percentile(self.samples, pct)

    def summary(self) -> Dict[str, float]:
        """Convenience dictionary with the usual summary statistics."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "stddev": self.stddev,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named collection of counters, gauges and histograms."""

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _qualify(self, name: str) -> str:
        return f"{self.namespace}.{name}" if self.namespace else name

    def counter(self, name: str) -> Counter:
        key = self._qualify(name)
        if key not in self._counters:
            self._counters[key] = Counter(key)
        return self._counters[key]

    def gauge(self, name: str) -> Gauge:
        key = self._qualify(name)
        if key not in self._gauges:
            self._gauges[key] = Gauge(key)
        return self._gauges[key]

    def histogram(self, name: str) -> Histogram:
        key = self._qualify(name)
        if key not in self._histograms:
            self._histograms[key] = Histogram(key)
        return self._histograms[key]

    def get_counter(self, name: str) -> Optional[Counter]:
        return self._counters.get(self._qualify(name))

    def get_histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(self._qualify(name))

    def snapshot(self) -> Dict[str, float]:
        """Flat dictionary of every metric's current value (histogram means)."""
        data: Dict[str, float] = {}
        for counter in self._counters.values():
            data[counter.name] = counter.value
        for gauge in self._gauges.values():
            data[gauge.name] = gauge.value
        for histogram in self._histograms.values():
            data[f"{histogram.name}.mean"] = histogram.mean
            data[f"{histogram.name}.count"] = float(histogram.count)
        return data

    def reset(self) -> None:
        """Drop all recorded metrics."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
