"""A tiny synchronous publish/subscribe event bus.

Fabric exposes block and chaincode events to client applications through
the *event hub*; peers, the client library and the metrics layer all use
this bus so that benchmark harnesses can observe commits without polling.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

EventHandler = Callable[[str, Any], None]


@dataclass
class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; use it to unsubscribe."""

    topic: str
    handler: EventHandler
    bus: "EventBus" = field(repr=False)
    active: bool = True

    def cancel(self) -> None:
        """Stop receiving events for this subscription."""
        if self.active:
            self.bus.unsubscribe(self)
            self.active = False


class EventBus:
    """Synchronous topic-based event dispatcher.

    Handlers run inline in the publisher's call stack which keeps the
    discrete-event simulation deterministic (no hidden queues).
    Exceptions raised by one handler are collected and re-raised after all
    handlers ran, so one misbehaving observer cannot silently swallow an
    event for the others.
    """

    def __init__(self) -> None:
        self._handlers: Dict[str, List[Subscription]] = defaultdict(list)
        self._published: int = 0

    @property
    def published_count(self) -> int:
        """Total number of events published on this bus."""
        return self._published

    def subscribe(self, topic: str, handler: EventHandler) -> Subscription:
        """Register ``handler`` for ``topic`` and return a cancellable handle."""
        subscription = Subscription(topic=topic, handler=handler, bus=self)
        self._handlers[topic].append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove a previously registered subscription (idempotent)."""
        handlers = self._handlers.get(subscription.topic, [])
        if subscription in handlers:
            handlers.remove(subscription)

    def publish(self, topic: str, payload: Any = None) -> int:
        """Publish ``payload`` on ``topic``; returns number of handlers invoked."""
        self._published += 1
        errors: List[Exception] = []
        delivered = 0
        for subscription in list(self._handlers.get(topic, [])):
            if not subscription.active:
                continue
            try:
                subscription.handler(topic, payload)
                delivered += 1
            except Exception as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
        if errors:
            raise errors[0]
        return delivered

    def topics(self) -> List[str]:
        """Topics that currently have at least one subscriber."""
        return sorted(topic for topic, subs in self._handlers.items() if subs)
