"""A tiny synchronous publish/subscribe event bus.

Fabric exposes block and chaincode events to client applications through
the *event hub*; peers, the client library and the metrics layer all use
this bus so that benchmark harnesses can observe commits without polling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Set

EventHandler = Callable[[str, Any], None]


@dataclass
class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; use it to unsubscribe.

    Also a context manager: ``with bus.subscribe(topic, fn):`` guarantees
    the handler is removed on exit, so transient observers (read caches,
    continuous-query cursors, test probes) cannot leak into the bus.
    """

    topic: str
    handler: EventHandler
    bus: "EventBus" = field(repr=False)
    active: bool = True
    #: Monotonic join ticket assigned by the bus; a publish only delivers
    #: to subscriptions whose stamp predates the publish.
    stamp: int = 0

    def cancel(self) -> None:
        """Stop receiving events for this subscription (idempotent).

        Safe to call from inside the subscription's own handler: the bus
        defers the structural removal until the publish that is currently
        walking the handler list has finished.
        """
        if self.active:
            self.active = False
            self.bus.unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cancel()


class EventBus:
    """Synchronous topic-based event dispatcher.

    Handlers run inline in the publisher's call stack which keeps the
    discrete-event simulation deterministic (no hidden queues).
    Exceptions raised by one handler are collected and re-raised after all
    handlers ran, so one misbehaving observer cannot silently swallow an
    event for the others.

    Cancelling a subscription *during* a publish — including a handler
    cancelling itself, the natural shape for one-shot cursors — is safe:
    removals are deferred while any publish is walking handler lists and
    swept once the outermost publish returns.  Handlers subscribed during
    a publish do not receive the in-flight event.
    """

    def __init__(self) -> None:
        # Plain dict, and topics are dropped as soon as their handler list
        # empties: per-transaction topics (``tx_committed:{tx_id}``) would
        # otherwise accumulate one empty list per transaction forever.
        self._handlers: Dict[str, List[Subscription]] = {}
        self._published: int = 0
        #: publish re-entrancy depth; structural removals are deferred
        #: while > 0 so in-flight handler walks keep stable indices.
        self._publishing: int = 0
        #: topics with cancelled subscriptions awaiting the deferred sweep.
        self._dirty_topics: Set[str] = set()
        #: next join ticket; publishes snapshot it so handlers subscribed
        #: mid-publish never see the in-flight event, on *any* topic.
        self._next_stamp: int = 0

    @property
    def published_count(self) -> int:
        """Total number of events published on this bus."""
        return self._published

    @property
    def topic_count(self) -> int:
        """Number of topics currently holding at least one subscription."""
        return len(self._handlers)

    def subscribe(self, topic: str, handler: EventHandler) -> Subscription:
        """Register ``handler`` for ``topic`` and return a cancellable handle."""
        subscription = Subscription(
            topic=topic, handler=handler, bus=self, stamp=self._next_stamp
        )
        self._next_stamp += 1
        self._handlers.setdefault(topic, []).append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove a previously registered subscription (idempotent).

        Called from inside a handler (directly or via
        :meth:`Subscription.cancel`) the removal is deferred: the
        subscription is deactivated immediately — it receives no further
        events — but the handler list is only compacted after the
        outermost in-flight publish completes.
        """
        subscription.active = False
        if self._publishing:
            self._dirty_topics.add(subscription.topic)
            return
        self._compact_topic(subscription.topic)

    def _compact_topic(self, topic: str) -> None:
        handlers = self._handlers.get(topic)
        if handlers is None:
            return
        live = [entry for entry in handlers if entry.active]
        if live:
            self._handlers[topic] = live
        else:
            del self._handlers[topic]

    def _sweep_dirty(self) -> None:
        if not self._dirty_topics:
            return
        dirty, self._dirty_topics = self._dirty_topics, set()
        for topic in dirty:
            self._compact_topic(topic)

    def publish(self, topic: str, payload: Any = None) -> int:
        """Publish ``payload`` on ``topic``; returns number of handlers invoked."""
        self._published += 1
        handlers = self._handlers.get(topic)
        if not handlers:
            # Fast path: most per-transaction topics have no subscriber on
            # 3 of the 4 peers publishing them.
            return 0
        errors: List[Exception] = []
        delivered = 0
        # Walk the live list up to its length at publish time: removals
        # are deferred while we iterate (indices stay stable, no per-call
        # copy) and subscribers added mid-publish land past the snapshot
        # length so they only see subsequent events.  The join-stamp check
        # makes that exclusion structural rather than positional: a fault
        # handler subscribing mid-publish (possibly to a topic a *nested*
        # publish is about to fire) must never receive the in-flight event,
        # even when a deferred sweep has renumbered list positions.
        snapshot_length = len(handlers)
        stamp_limit = self._next_stamp
        self._publishing += 1
        try:
            for position in range(snapshot_length):
                subscription = handlers[position]
                if not subscription.active:
                    continue
                if subscription.stamp >= stamp_limit:
                    continue
                try:
                    subscription.handler(topic, payload)
                    delivered += 1
                except Exception as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)
        finally:
            self._publishing -= 1
            if not self._publishing:
                self._sweep_dirty()
        if errors:
            raise errors[0]
        return delivered

    def publish_batch(self, topic: str, payloads: List[Any]) -> int:
        """Deliver a whole window of payloads as **one** handler invocation.

        The batched form of :meth:`publish`: handlers subscribed to
        ``topic`` receive the payload *list* in a single call instead of
        one call per payload.  This is the commit-delivery coalescing the
        parallel executor relies on — per-block notification fan-out is
        buffered and handed over once per barrier window, so subscriber
        dispatch cost is paid per window, not per block.

        An empty batch is a no-op (nothing is published, no handler runs).
        """
        if not payloads:
            return 0
        return self.publish(topic, payloads)

    def topics(self) -> List[str]:
        """Topics that currently have at least one subscriber."""
        return sorted(
            topic
            for topic, subs in self._handlers.items()
            if any(entry.active for entry in subs)
        )
