"""A tiny synchronous publish/subscribe event bus.

Fabric exposes block and chaincode events to client applications through
the *event hub*; peers, the client library and the metrics layer all use
this bus so that benchmark harnesses can observe commits without polling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

EventHandler = Callable[[str, Any], None]


@dataclass
class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; use it to unsubscribe."""

    topic: str
    handler: EventHandler
    bus: "EventBus" = field(repr=False)
    active: bool = True

    def cancel(self) -> None:
        """Stop receiving events for this subscription."""
        if self.active:
            self.bus.unsubscribe(self)
            self.active = False


class EventBus:
    """Synchronous topic-based event dispatcher.

    Handlers run inline in the publisher's call stack which keeps the
    discrete-event simulation deterministic (no hidden queues).
    Exceptions raised by one handler are collected and re-raised after all
    handlers ran, so one misbehaving observer cannot silently swallow an
    event for the others.
    """

    def __init__(self) -> None:
        # Plain dict, and topics are dropped as soon as their handler list
        # empties: per-transaction topics (``tx_committed:{tx_id}``) would
        # otherwise accumulate one empty list per transaction forever.
        self._handlers: Dict[str, List[Subscription]] = {}
        self._published: int = 0

    @property
    def published_count(self) -> int:
        """Total number of events published on this bus."""
        return self._published

    @property
    def topic_count(self) -> int:
        """Number of topics currently holding at least one subscription."""
        return len(self._handlers)

    def subscribe(self, topic: str, handler: EventHandler) -> Subscription:
        """Register ``handler`` for ``topic`` and return a cancellable handle."""
        subscription = Subscription(topic=topic, handler=handler, bus=self)
        self._handlers.setdefault(topic, []).append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove a previously registered subscription (idempotent)."""
        handlers = self._handlers.get(subscription.topic)
        if not handlers:
            return
        if subscription in handlers:
            handlers.remove(subscription)
        if not handlers:
            del self._handlers[subscription.topic]

    def publish(self, topic: str, payload: Any = None) -> int:
        """Publish ``payload`` on ``topic``; returns number of handlers invoked."""
        self._published += 1
        handlers = self._handlers.get(topic)
        if not handlers:
            # Fast path: most per-transaction topics have no subscriber on
            # 3 of the 4 peers publishing them.
            return 0
        errors: List[Exception] = []
        delivered = 0
        for subscription in list(handlers):
            if not subscription.active:
                continue
            try:
                subscription.handler(topic, payload)
                delivered += 1
            except Exception as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
        # Handlers may have cancelled subscriptions (including their own)
        # while running; drop the topic once its list has emptied.
        remaining = self._handlers.get(topic)
        if remaining is not None and not remaining:
            del self._handlers[topic]
        if errors:
            raise errors[0]
        return delivered

    def publish_batch(self, topic: str, payloads: List[Any]) -> int:
        """Deliver a whole window of payloads as **one** handler invocation.

        The batched form of :meth:`publish`: handlers subscribed to
        ``topic`` receive the payload *list* in a single call instead of
        one call per payload.  This is the commit-delivery coalescing the
        parallel executor relies on — per-block notification fan-out is
        buffered and handed over once per barrier window, so subscriber
        dispatch cost is paid per window, not per block.

        An empty batch is a no-op (nothing is published, no handler runs).
        """
        if not payloads:
            return 0
        return self.publish(topic, payloads)

    def topics(self) -> List[str]:
        """Topics that currently have at least one subscriber."""
        return sorted(topic for topic, subs in self._handlers.items() if subs)
