"""Exception hierarchy for the HyperProv reproduction.

Every error raised by the library derives from :class:`HyperProvError` so
applications can catch library failures with a single ``except`` clause
while still being able to discriminate by subsystem.
"""

from __future__ import annotations


class HyperProvError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(HyperProvError):
    """An invalid or inconsistent configuration value was supplied."""


class ValidationError(HyperProvError):
    """A transaction, block, or record failed validation."""


class NotFoundError(HyperProvError):
    """A requested key, block, node, or data item does not exist."""


class DuplicateError(HyperProvError):
    """An entity with the same identifier already exists."""


class EndorsementError(HyperProvError):
    """A transaction proposal failed to gather the required endorsements."""


class SealedEnvelopeError(HyperProvError):
    """A sealed transaction envelope was mutated through the rw-set API.

    Sealed envelopes are structurally shared between the orderer and every
    peer; mutate a private copy obtained via ``Transaction.tamper()`` (or
    ``Block.tamper``) instead."""


class OrderingError(HyperProvError):
    """The ordering service rejected or failed to order a transaction."""


class CommitError(ValidationError):
    """A transaction was invalidated during the commit/validation phase."""

    def __init__(self, message: str, code: str = "GENERIC") -> None:
        super().__init__(message)
        #: Machine readable validation code (mirrors Fabric's TxValidationCode).
        self.code = code


class MVCCConflictError(CommitError):
    """The transaction's read set conflicts with a newer committed version."""

    def __init__(self, key: str, expected_version: object, found_version: object) -> None:
        super().__init__(
            f"MVCC conflict on key {key!r}: read version {expected_version}, "
            f"committed version is {found_version}",
            code="MVCC_READ_CONFLICT",
        )
        self.key = key
        self.expected_version = expected_version
        self.found_version = found_version


class AdmissionRejectedError(HyperProvError):
    """A tenant exceeded its in-flight submission cap (admission control)."""

    def __init__(self, tenant: str, limit: int) -> None:
        label = tenant or "<default>"
        super().__init__(
            f"tenant {label!r} has {limit} submissions in flight "
            f"(per-tenant cap); drain or wait for commits before submitting more"
        )
        self.tenant = tenant
        self.limit = limit


class IncompleteTransactionError(HyperProvError):
    """A result was requested from a transaction that has not committed yet."""


class StorageError(HyperProvError):
    """Off-chain storage failed (missing item, checksum mismatch, I/O)."""


class ChecksumMismatchError(StorageError):
    """Retrieved data does not match the checksum recorded on-chain."""

    def __init__(self, expected: str, actual: str) -> None:
        super().__init__(f"checksum mismatch: expected {expected}, got {actual}")
        self.expected = expected
        self.actual = actual


class NetworkError(HyperProvError):
    """A message could not be delivered (partition, unknown node, timeout)."""


class PartitionError(NetworkError):
    """Source and destination are in different network partitions."""


class DeadlineExceededError(HyperProvError):
    """An operation ran past its per-request deadline budget.

    Deliberately *not* a :class:`NetworkError`: the retry middleware must
    never retry past the deadline, so this error is terminal for the
    request even when the underlying cause was transient.
    """

    def __init__(self, message: str, deadline_at: float = 0.0) -> None:
        super().__init__(message)
        #: The absolute virtual time the request was allowed to run until.
        self.deadline_at = deadline_at


class CircuitOpenError(HyperProvError):
    """The circuit breaker for a backend/shard is open; the call was
    rejected without being attempted.

    Deliberately *not* a :class:`NetworkError` either — retrying against
    an open breaker would defeat its purpose, so the default retry policy
    propagates it immediately.
    """

    def __init__(self, key: object, until: float) -> None:
        super().__init__(
            f"circuit for backend {key!r} is open until t={until:.3f}s; "
            f"request rejected without an attempt"
        )
        self.key = key
        self.until = until


class CryptoError(HyperProvError):
    """Signature verification or certificate validation failed."""


class ChaincodeError(HyperProvError):
    """Chaincode invocation raised an application-level error."""


class SimulationError(HyperProvError):
    """The discrete-event simulation engine was used incorrectly."""
