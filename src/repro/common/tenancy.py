"""The tenant key-namespace format, in one place.

The ``tenant/<name>/…`` ledger-key layout is load-bearing for three
otherwise-unrelated layers: the tenant-prefix middleware writes it, the
shard router co-locates on it, and the fair-share orderer scheduler
attributes transactions by it.  They all parse the format through these
helpers so a change to the scheme cannot silently diverge.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError

#: Ledger-key prefix every tenant namespace lives under.
TENANT_PREFIX = "tenant/"


def tenant_namespace(tenant: str) -> str:
    """The ledger-key prefix owned by ``tenant`` (``tenant/<name>/``)."""
    if not tenant:
        raise ConfigurationError("tenant name must be non-empty")
    if "/" in tenant:
        raise ConfigurationError(f"tenant name {tenant!r} must not contain '/'")
    return f"{TENANT_PREFIX}{tenant}/"


def namespace_key(tenant: str, key: str) -> str:
    """Map a tenant-relative key to its namespaced ledger key."""
    return tenant_namespace(tenant) + key


def strip_namespace(tenant: str, key: str) -> str:
    """Map a namespaced ledger key back to the tenant-relative key."""
    prefix = tenant_namespace(tenant)
    return key[len(prefix):] if key.startswith(prefix) else key


def tenant_of_key(key: str) -> str:
    """The tenant owning a ledger key (``""`` for un-namespaced keys)."""
    if not key.startswith(TENANT_PREFIX):
        return ""
    remainder = key[len(TENANT_PREFIX):]
    name, _, rest = remainder.partition("/")
    return name if rest else ""
