"""Deterministic identifier generation.

Benchmarks must be reproducible run-to-run, so identifiers are produced by
a seeded generator instead of ``uuid.uuid4``.  Each subsystem owns an
:class:`IdGenerator` namespaced by a prefix (``tx``, ``block``, ``node``…).
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Iterator


def short_uid(seed: str, length: int = 12) -> str:
    """Derive a short, stable identifier from an arbitrary seed string."""
    return hashlib.sha256(seed.encode("utf-8")).hexdigest()[:length]


class IdGenerator:
    """Produces unique, deterministic identifiers of the form ``prefix-N-hash``.

    Parameters
    ----------
    prefix:
        A short namespace such as ``"tx"`` or ``"block"``.
    seed:
        Run-level seed; two generators created with the same prefix and
        seed produce the same sequence.
    """

    def __init__(self, prefix: str, seed: str = "hyperprov") -> None:
        self.prefix = prefix
        self.seed = seed
        self._counter: Iterator[int] = itertools.count()

    def next(self) -> str:
        """Return the next identifier in the sequence."""
        index = next(self._counter)
        suffix = short_uid(f"{self.seed}:{self.prefix}:{index}", 8)
        return f"{self.prefix}-{index}-{suffix}"

    def peek_index(self) -> int:
        """Number of identifiers handed out so far (cheap introspection)."""
        # itertools.count cannot be peeked; keep a parallel counter instead.
        raise NotImplementedError("use DeterministicIdGenerator for peeking")


class DeterministicIdGenerator(IdGenerator):
    """:class:`IdGenerator` variant that also tracks how many ids were issued."""

    def __init__(self, prefix: str, seed: str = "hyperprov") -> None:
        super().__init__(prefix, seed)
        self._issued = 0

    def next(self) -> str:
        identifier = super().next()
        self._issued += 1
        return identifier

    def peek_index(self) -> int:
        return self._issued
