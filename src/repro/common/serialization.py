"""Canonical serialization helpers.

Signatures and checksums must be computed over a stable byte encoding, so
all structures destined for hashing or signing go through
:func:`canonical_json` (sorted keys, no whitespace, UTF-8).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any


class _CanonicalEncoder(json.JSONEncoder):
    """JSON encoder that understands dataclasses, bytes and sets."""

    def default(self, o: Any) -> Any:  # noqa: D102 - documented by parent
        if dataclasses.is_dataclass(o) and not isinstance(o, type):
            return dataclasses.asdict(o)
        if isinstance(o, (bytes, bytearray, memoryview)):
            return {"__bytes__": bytes(o).hex()}
        if isinstance(o, (set, frozenset)):
            return sorted(o)
        if hasattr(o, "to_dict"):
            return o.to_dict()
        return super().default(o)


def canonical_json(obj: Any) -> bytes:
    """Encode ``obj`` into deterministic JSON bytes.

    Keys are sorted and separators are minimal so that logically equal
    objects always serialize to identical bytes.
    """
    return json.dumps(
        obj,
        cls=_CanonicalEncoder,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    ).encode("utf-8")


def _decode_bytes(obj: Any) -> Any:
    if isinstance(obj, dict):
        if set(obj.keys()) == {"__bytes__"}:
            return bytes.fromhex(obj["__bytes__"])
        return {key: _decode_bytes(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_decode_bytes(item) for item in obj]
    return obj


def from_canonical_json(data: bytes | str) -> Any:
    """Decode bytes produced by :func:`canonical_json`."""
    if isinstance(data, (bytes, bytearray)):
        data = data.decode("utf-8")
    return _decode_bytes(json.loads(data))
