"""Hashing helpers.

HyperProv records the SHA-256 checksum of every data item on chain; the
same digest is used as the content address in the off-chain store and for
block/transaction hashing inside the Fabric substrate.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

BytesLike = Union[bytes, bytearray, memoryview, str]


def _to_bytes(data: BytesLike) -> bytes:
    if isinstance(data, str):
        return data.encode("utf-8")
    return bytes(data)


def sha256_bytes(data: BytesLike) -> bytes:
    """Return the raw 32-byte SHA-256 digest of ``data``."""
    return hashlib.sha256(_to_bytes(data)).digest()


def sha256_hex(data: BytesLike) -> str:
    """Return the hex-encoded SHA-256 digest of ``data``."""
    return hashlib.sha256(_to_bytes(data)).hexdigest()


def checksum_of(data: BytesLike) -> str:
    """Checksum used for on-chain records and content addressing.

    Kept as a named alias of :func:`sha256_hex` so the checksum algorithm
    can be swapped in one place.
    """
    return sha256_hex(data)


def combine_hashes(hashes: Iterable[str]) -> str:
    """Hash the concatenation of several hex digests (order-sensitive)."""
    acc = hashlib.sha256()
    for item in hashes:
        acc.update(item.encode("ascii"))
    return acc.hexdigest()


class HashChain:
    """Incremental hash chain, ``h_n = H(h_{n-1} || item_n)``.

    Used by the block store to maintain the running chain hash and by the
    ProvChain baseline for its tamper-evident log.
    """

    GENESIS = "0" * 64

    def __init__(self, seed: str | None = None) -> None:
        self._current = seed if seed is not None else self.GENESIS
        self._length = 0

    @property
    def current(self) -> str:
        """The latest chained digest."""
        return self._current

    def __len__(self) -> int:
        return self._length

    def extend(self, item: BytesLike) -> str:
        """Fold ``item`` into the chain and return the new digest."""
        digest = hashlib.sha256()
        digest.update(self._current.encode("ascii"))
        digest.update(_to_bytes(item))
        self._current = digest.hexdigest()
        self._length += 1
        return self._current

    def verify(self, items: Iterable[BytesLike], seed: str | None = None) -> bool:
        """Re-play ``items`` from ``seed`` and compare with the current digest."""
        replay = HashChain(seed)
        for item in items:
            replay.extend(item)
        return replay.current == self._current and len(replay) == self._length
