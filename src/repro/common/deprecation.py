"""Deprecation helper for the legacy blocking client/baseline surfaces."""

from __future__ import annotations

import warnings


def warn_deprecated(old: str, replacement: str) -> None:
    """Emit a :class:`DeprecationWarning` pointing at the unified API.

    ``stacklevel=3`` attributes the warning to the caller of the deprecated
    method (the shim itself adds one frame).
    """
    warnings.warn(
        f"{old} is deprecated; use {replacement} (see docs/api.md)",
        DeprecationWarning,
        stacklevel=3,
    )
