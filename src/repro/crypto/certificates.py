"""X.509-like certificates and certificate authorities.

HyperProv stores "a certificate pertaining to who stored the data" with
every on-chain record.  In Fabric that certificate is issued by the
organization's CA and validated by the MSP.  This module provides the same
structure: a :class:`CertificateAuthority` per organization issues
:class:`Certificate` objects binding a subject name to a public key, signed
by the CA; certificates can be verified against the CA and revoked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.common.errors import CryptoError, DuplicateError
from repro.common.serialization import canonical_json
from repro.crypto.keys import KeyPair, verify


@dataclass(frozen=True)
class Certificate:
    """A signed binding of ``subject`` (an identity) to a public key."""

    subject: str
    organization: str
    public_key: str
    issuer: str
    serial: int
    signature: str
    role: str = "member"

    def to_dict(self) -> Dict[str, object]:
        """Dictionary representation (used for canonical serialization)."""
        return {
            "subject": self.subject,
            "organization": self.organization,
            "public_key": self.public_key,
            "issuer": self.issuer,
            "serial": self.serial,
            "signature": self.signature,
            "role": self.role,
        }

    def tbs_bytes(self) -> bytes:
        """The "to-be-signed" portion of the certificate."""
        return canonical_json(
            {
                "subject": self.subject,
                "organization": self.organization,
                "public_key": self.public_key,
                "issuer": self.issuer,
                "serial": self.serial,
                "role": self.role,
            }
        )

    @property
    def fingerprint(self) -> str:
        """Stable short identifier for the certificate.

        Computed once per certificate object — the chaincode reads the
        creator fingerprint on every endorsement, and the certificate is
        frozen, so the canonical serialization cannot change under it.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            from repro.common.hashing import sha256_hex

            cached = sha256_hex(self.tbs_bytes())[:16]
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def __hash__(self) -> int:
        # Same field tuple the generated __hash__ would use, but memoized:
        # MSP validation hashes the endorser certificate once per
        # endorsement per validating peer, and the 7-field tuple hash over
        # long strings is measurable on that path.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((
                self.subject, self.organization, self.public_key,
                self.issuer, self.serial, self.signature, self.role,
            ))
            object.__setattr__(self, "_hash", cached)
        return cached


class CertificateAuthority:
    """Issues and validates certificates for one organization."""

    def __init__(self, name: str, organization: str) -> None:
        self.name = name
        self.organization = organization
        self._keys = KeyPair.generate(f"ca:{organization}:{name}")
        self._serial = 0
        self._issued: Dict[str, Certificate] = {}
        self._revoked: Set[int] = set()
        #: Memoized signature-binding results (see :meth:`validate`).
        self._signature_ok: Dict[Certificate, bool] = {}

    @property
    def public_key(self) -> str:
        """The CA's root public key (trust anchor distributed to all MSPs)."""
        return self._keys.public_key

    def issue(self, subject: str, public_key: str, role: str = "member") -> Certificate:
        """Issue a certificate binding ``subject`` to ``public_key``.

        Raises :class:`~repro.common.errors.DuplicateError` if the subject
        already holds an unrevoked certificate from this CA.
        """
        existing = self._issued.get(subject)
        if existing is not None and existing.serial not in self._revoked:
            raise DuplicateError(
                f"subject {subject!r} already has certificate serial {existing.serial}"
            )
        self._serial += 1
        unsigned = Certificate(
            subject=subject,
            organization=self.organization,
            public_key=public_key,
            issuer=self.name,
            serial=self._serial,
            signature="",
            role=role,
        )
        signature = self._keys.sign(unsigned.tbs_bytes())
        certificate = Certificate(
            subject=subject,
            organization=self.organization,
            public_key=public_key,
            issuer=self.name,
            serial=self._serial,
            signature=signature,
            role=role,
        )
        self._issued[subject] = certificate
        return certificate

    def revoke(self, certificate: Certificate) -> None:
        """Add the certificate to the revocation list."""
        if certificate.issuer != self.name:
            raise CryptoError("cannot revoke a certificate issued by another CA")
        self._revoked.add(certificate.serial)

    def is_revoked(self, certificate: Certificate) -> bool:
        return certificate.serial in self._revoked

    def validate(self, certificate: Certificate) -> bool:
        """Check issuer, signature binding, and revocation status.

        The signature-binding check is memoized per certificate object
        value (certificates are frozen dataclasses, so the cache key
        covers every field): validating the same endorser certificate once
        per peer per block would otherwise redo the same HMAC millions of
        times.  Revocation is deliberately *not* cached — revoking takes
        effect on the next validation.
        """
        if certificate.issuer != self.name:
            return False
        if certificate.organization != self.organization:
            return False
        if self.is_revoked(certificate):
            return False
        cached = self._signature_ok.get(certificate)
        if cached is None:
            cached = verify(
                self.public_key,
                certificate.tbs_bytes(),
                certificate.signature,
                private_hint=self._keys.private_key,
            )
            self._signature_ok[certificate] = cached
        return cached

    def lookup(self, subject: str) -> Optional[Certificate]:
        """Return the certificate issued to ``subject``, if any."""
        return self._issued.get(subject)

    @property
    def issued_count(self) -> int:
        return len(self._issued)
