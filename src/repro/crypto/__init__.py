"""Cryptographic primitives for the permissioned blockchain substrate.

Real Hyperledger Fabric uses ECDSA over X.509 certificates.  The standard
library has no asymmetric cryptography, so this package implements an
HMAC-based signature scheme with the same *shape*: key pairs, signing,
verification, certificate authorities issuing certificates with a chain of
trust, and certificate revocation.  Security of the scheme is not the
point — the protocol logic (who signs what, what gets verified where) is
identical to Fabric's, which is what the reproduction needs.
"""

from repro.crypto.keys import KeyPair, sign, verify
from repro.crypto.certificates import Certificate, CertificateAuthority
from repro.crypto.merkle import MerkleTree

__all__ = [
    "KeyPair",
    "sign",
    "verify",
    "Certificate",
    "CertificateAuthority",
    "MerkleTree",
]
