"""Merkle trees over transaction lists.

Fabric blocks carry the hash of their transaction data; we use a Merkle
root so individual transactions can also be proven against a block header
(`inclusion proofs`), which the test-suite uses as a tamper-evidence
invariant.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.common.hashing import sha256_hex

ProofStep = Tuple[str, str]  # (sibling_hash, "L" | "R")


class MerkleTree:
    """Binary Merkle tree built over a sequence of byte strings."""

    EMPTY_ROOT = sha256_hex(b"hyperprov-empty-merkle")

    def __init__(self, leaves: Sequence[bytes]) -> None:
        self._leaf_hashes: List[str] = [sha256_hex(leaf) for leaf in leaves]
        self._levels: List[List[str]] = []
        self._build()

    @classmethod
    def from_leaf_hashes(cls, leaf_hashes: Sequence[str]) -> "MerkleTree":
        """Build a tree from already-computed leaf hashes.

        A leaf hash here is exactly ``sha256_hex(leaf)``, so a tree built
        from ``Transaction.digest()`` values (cached on sealed envelopes)
        has the same root as one built from the raw envelope bytes —
        without re-hashing every envelope per peer per block.
        """
        tree = cls.__new__(cls)
        tree._leaf_hashes = list(leaf_hashes)
        tree._levels = []
        tree._build()
        return tree

    def _build(self) -> None:
        if not self._leaf_hashes:
            self._levels = [[self.EMPTY_ROOT]]
            return
        level = list(self._leaf_hashes)
        self._levels = [level]
        while len(level) > 1:
            next_level: List[str] = []
            for index in range(0, len(level), 2):
                left = level[index]
                right = level[index + 1] if index + 1 < len(level) else left
                next_level.append(sha256_hex(left + right))
            self._levels.append(next_level)
            level = next_level

    @property
    def root(self) -> str:
        """The Merkle root (a stable constant for an empty tree)."""
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self._leaf_hashes)

    def proof(self, index: int) -> List[ProofStep]:
        """Inclusion proof for the leaf at ``index``.

        Each step is ``(sibling_hash, side)`` where ``side`` says whether the
        sibling is concatenated on the left or the right.
        """
        if not 0 <= index < len(self._leaf_hashes):
            raise IndexError(f"leaf index {index} out of range")
        steps: List[ProofStep] = []
        position = index
        for level in self._levels[:-1]:
            sibling_index = position + 1 if position % 2 == 0 else position - 1
            if sibling_index >= len(level):
                sibling_index = position  # odd node duplicated with itself
            side = "R" if position % 2 == 0 else "L"
            steps.append((level[sibling_index], side))
            position //= 2
        return steps

    @classmethod
    def verify_proof(cls, leaf: bytes, proof: List[ProofStep], root: str) -> bool:
        """Check that ``leaf`` is included under ``root`` via ``proof``."""
        current = sha256_hex(leaf)
        for sibling, side in proof:
            if side == "R":
                current = sha256_hex(current + sibling)
            elif side == "L":
                current = sha256_hex(sibling + current)
            else:
                return False
        return current == root
