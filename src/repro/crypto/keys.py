"""Key pairs and a deterministic signature scheme.

The scheme mimics the API of an asymmetric signature system:

* a :class:`KeyPair` has a private part (kept by the owner) and a public
  part (embedded in certificates),
* :func:`sign` produces a signature with the private key,
* :func:`verify` checks a signature given only the public key.

Internally the "public key" is a commitment to the private key and the
signature binds the message to the private key via HMAC; verification
re-derives the commitment.  This gives unforgeability against actors that
follow the library API (nobody else holds the private key object), which
is sufficient for protocol-level simulation.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from functools import lru_cache

from repro.common.caching import BoundedMemo
from repro.common.errors import CryptoError

_PUBLIC_DERIVATION_TAG = b"hyperprov-public-key-v1"
_SIGNATURE_TAG = b"hyperprov-signature-v1"

#: Registry mapping public keys to the private key that generated them.  It
#: plays the role of the asymmetric trapdoor: verifiers can re-compute the
#: HMAC for any key created through this module without the signer handing
#: them the private key object, while code outside the library cannot forge
#: signatures for identities it did not create.  (A simulation substitute
#: for real ECDSA — see the package docstring.)
_KEY_REGISTRY: dict = {}

#: Memoized verification outcomes keyed by (public_key, message, signature).
#: ``verify`` is a pure function, but the same triple is re-checked by every
#: endorsing peer (the client's proposal signature) — cache the HMAC result.
_VERIFY_CACHE = BoundedMemo(16384)


@lru_cache(maxsize=4096)
def _derive_public(private_key: bytes) -> str:
    # Pure derivation, re-run on every sign/verify for the same handful of
    # keys — memoized (keys are 32-byte digests, the cache stays tiny).
    return hashlib.sha256(_PUBLIC_DERIVATION_TAG + private_key).hexdigest()


@dataclass(frozen=True)
class KeyPair:
    """A private/public key pair.

    Create with :meth:`generate` (seeded, deterministic) rather than the
    constructor so key material derivation stays in one place.
    """

    private_key: bytes = field(repr=False)
    public_key: str

    @classmethod
    def generate(cls, seed: str) -> "KeyPair":
        """Deterministically derive a key pair from an identity seed."""
        private = hashlib.sha256(f"private:{seed}".encode("utf-8")).digest()
        public = _derive_public(private)
        _KEY_REGISTRY[public] = private
        return cls(private_key=private, public_key=public)

    def sign(self, message: bytes) -> str:
        """Sign ``message`` with this key pair's private key."""
        return sign(self.private_key, message)

    def verify(self, message: bytes, signature: str) -> bool:
        """Verify a signature against this key pair's public key."""
        return verify(self.public_key, message, signature, private_hint=self.private_key)


def sign(private_key: bytes, message: bytes) -> str:
    """Produce a hex signature of ``message`` under ``private_key``."""
    if not isinstance(message, (bytes, bytearray)):
        raise CryptoError("messages must be bytes")
    mac = hmac.new(private_key, _SIGNATURE_TAG + bytes(message), hashlib.sha256)
    # The signature embeds the public key so verifiers can bind it to the
    # claimed signer without access to the private key.
    return f"{_derive_public(private_key)}:{mac.hexdigest()}"


def verify(
    public_key: str,
    message: bytes,
    signature: str,
    private_hint: bytes | None = None,
) -> bool:
    """Check that ``signature`` over ``message`` was produced by the holder of
    ``public_key``.

    The HMAC is fully recomputed against the message, so a signature copied
    onto different content fails verification.  The signing key is obtained
    either from ``private_hint`` (when the verifier is the signer) or from
    the module's key registry.
    """
    if not isinstance(signature, str) or ":" not in signature:
        return False
    cache_key = (public_key, bytes(message), signature)
    cached = _VERIFY_CACHE.get(cache_key)
    if cached is not None:
        return cached
    embedded_public, mac_hex = signature.split(":", 1)
    if embedded_public != public_key:
        return False
    if len(mac_hex) != 64 or any(c not in "0123456789abcdef" for c in mac_hex):
        return False
    signing_key = private_hint if private_hint is not None else _KEY_REGISTRY.get(public_key)
    if signing_key is None:
        return False
    if _derive_public(signing_key) != public_key:
        return False
    expected = hmac.new(
        signing_key, _SIGNATURE_TAG + bytes(message), hashlib.sha256
    ).hexdigest()
    result = hmac.compare_digest(expected, mac_hex)
    _VERIFY_CACHE[cache_key] = result
    return result
