"""Ablation: Solo vs Raft ordering service.

The paper's testbeds run the Solo orderer; HLF v1.4.1 introduced Raft.
This bench runs the same StoreData workload under both ordering services
on the desktop deployment and reports the throughput/latency cost of
crash-fault-tolerant ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.bench.reporting import ResultTable, format_seconds
from repro.bench.runner import RunConfig, RunResult, StoreDataRunner
from repro.core.topology import build_desktop_deployment


@dataclass
class ConsensusAblation:
    """Results per ordering mode."""

    results: Dict[str, RunResult] = field(default_factory=dict)

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Ablation — Solo vs Raft ordering (64 KiB payloads, desktop setup)",
            columns=["ordering", "throughput (tx/s)", "mean response", "committed"],
        )
        for mode, result in self.results.items():
            table.add_row(
                mode,
                round(result.throughput_tps, 2),
                format_seconds(result.mean_response_s),
                result.committed,
            )
        return table


def run_consensus_ablation(
    payload_bytes: int = 64 * 1024,
    requests: int = 25,
    seed: int = 42,
) -> ConsensusAblation:
    """Measure the StoreData workload under Solo and Raft ordering."""
    ablation = ConsensusAblation()
    for mode in ("solo", "raft"):
        deployment = build_desktop_deployment(ordering=mode, seed=seed)
        if mode == "raft":
            # Give the cluster time to elect a leader before load arrives.
            deployment.engine.run(until=1.0)
        runner = StoreDataRunner(deployment)
        result = runner.run(
            RunConfig(data_size_bytes=payload_bytes, request_count=requests, seed=seed)
        )
        ablation.results[mode] = result
    return ablation


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_consensus_ablation().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
