"""Export experiment results to CSV/JSON for plotting.

The paper presents Figs. 1-3 as plots; this module turns the harness's
result objects into flat files (one CSV per figure plus a combined JSON
manifest) so the figures can be redrawn with any plotting tool:

    python -m repro.bench.export --out results/ --requests 30

Only the standard library is used; files are overwritten on each run.
"""

from __future__ import annotations

import argparse
import csv
import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.fig1_throughput import FigureSeries, run_fig1
from repro.bench.fig2_rpi import run_fig2
from repro.bench.fig3_energy import EnergyFigure, run_fig3
from repro.bench.ops_table import OperatorLatencies, run_ops_table
from repro.middleware.metrics import STAGES


def figure_series_rows(series: FigureSeries) -> List[Dict[str, object]]:
    """Flatten a Fig. 1 / Fig. 2 series into plottable rows."""
    rows = []
    for result in series.results:
        summary = result.summary()
        summary["setup"] = series.setup
        rows.append(summary)
    return rows


def energy_rows(figure: EnergyFigure) -> List[Dict[str, object]]:
    """Flatten the Fig. 3 intervals into plottable rows."""
    return [
        {
            "interval": report.label,
            "start_s": report.start,
            "end_s": report.end,
            "mean_watts": report.mean_watts,
            "max_watts": report.max_watts,
            "min_watts": report.min_watts,
            "energy_joules": report.energy_joules,
        }
        for report in figure.intervals
    ]


def ops_rows(results: List[OperatorLatencies]) -> List[Dict[str, object]]:
    """Flatten the operator latency table into rows."""
    rows = []
    for result in results:
        for operator, latency in sorted(result.latencies_s.items()):
            rows.append({"setup": result.setup, "operator": operator, "latency_s": latency})
    return rows


def stage_rows(results: List[OperatorLatencies]) -> List[Dict[str, object]]:
    """Per-stage write-path latency (endorse/order/commit) per setup.

    Recorded by the pipeline's metrics middleware, so the ops benchmark can
    attribute where transaction time goes rather than only reporting the
    end-to-end number.
    """
    rows = []
    for result in results:
        for stage in STAGES:
            if stage in result.stages_s:
                rows.append(
                    {
                        "setup": result.setup,
                        "stage": stage,
                        "mean_latency_s": result.stages_s[stage],
                    }
                )
    return rows


def write_csv(path: Path, rows: List[Dict[str, object]]) -> Path:
    """Write ``rows`` as a CSV file with a header derived from the first row."""
    if not rows:
        raise ValueError(f"refusing to write empty result file {path}")
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path


def export_all(
    out_dir: Path,
    requests: int = 30,
    rpi_requests: int = 20,
    energy_interval_s: float = 600.0,
    seed: int = 42,
) -> Dict[str, str]:
    """Run Figs. 1-3 and the ops table, writing one CSV each plus a manifest.

    Returns a mapping of experiment id → written file path.
    """
    out_dir = Path(out_dir)
    written: Dict[str, str] = {}

    fig1 = run_fig1(requests_per_size=requests, seed=seed)
    written["fig1"] = str(write_csv(out_dir / "fig1_desktop.csv", figure_series_rows(fig1)))

    fig2 = run_fig2(requests_per_size=rpi_requests, seed=seed)
    written["fig2"] = str(write_csv(out_dir / "fig2_rpi.csv", figure_series_rows(fig2)))

    fig3 = run_fig3(interval_s=energy_interval_s, seed=seed)
    written["fig3"] = str(write_csv(out_dir / "fig3_energy.csv", energy_rows(fig3)))

    ops = run_ops_table(repeats=3, seed=seed)
    written["ops"] = str(write_csv(out_dir / "ops_table.csv", ops_rows(ops)))
    breakdown = stage_rows(ops)
    if breakdown:
        written["ops_stages"] = str(
            write_csv(out_dir / "ops_stage_breakdown.csv", breakdown)
        )

    manifest = {
        "seed": seed,
        "requests_per_size": requests,
        "rpi_requests_per_size": rpi_requests,
        "energy_interval_s": energy_interval_s,
        "files": written,
    }
    manifest_path = out_dir / "manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    written["manifest"] = str(manifest_path)
    return written


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - thin CLI
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results", help="output directory (default: results/)")
    parser.add_argument("--requests", type=int, default=30)
    parser.add_argument("--interval", type=float, default=600.0)
    args = parser.parse_args(argv)
    written = export_all(Path(args.out), requests=args.requests,
                         energy_interval_s=args.interval)
    for experiment, path in sorted(written.items()):
        print(f"{experiment}: {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
