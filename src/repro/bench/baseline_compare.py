"""Baseline comparison: HyperProv vs ProvChain-style PoW vs central DB.

Reproduces the paper's qualitative claim that a permissioned blockchain
"has much less resource requirements compared to public blockchains"
while still providing tamper evidence that a centralized database lacks.
The bench stores the same 1 KiB provenance workload through all three
systems on RPi-class hardware and reports throughput, mean latency and
mean power of the recording device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.api.protocol import StoreRequest
from repro.baselines.centraldb import CentralProvenanceDatabase
from repro.baselines.provchain import PowProvenanceChain
from repro.bench.reporting import ResultTable, format_seconds
from repro.bench.runner import RunConfig, StoreDataRunner
from repro.core.topology import build_rpi_deployment
from repro.devices.model import DeviceModel
from repro.devices.profiles import RASPBERRY_PI_3B_PLUS, XEON_E5_1603
from repro.energy.meter import PowerMeter
from repro.energy.power import PowerModel
from repro.simulation.randomness import DeterministicRandom
from repro.workloads.payloads import PayloadGenerator


@dataclass
class SystemComparison:
    """Measured behaviour of one provenance system under the same workload."""

    system: str
    throughput_tps: float
    mean_latency_s: float
    mean_power_w: float
    tamper_evident: bool


@dataclass
class BaselineReport:
    """All systems side by side."""

    entries: List[SystemComparison] = field(default_factory=list)

    def entry(self, system: str) -> SystemComparison:
        for item in self.entries:
            if item.system == system:
                return item
        raise KeyError(system)

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Baseline comparison — 1 KiB provenance records on RPi-class hardware",
            columns=["system", "throughput (tx/s)", "mean latency", "mean power (W)",
                     "tamper evident"],
        )
        for item in self.entries:
            table.add_row(
                item.system,
                round(item.throughput_tps, 2),
                format_seconds(item.mean_latency_s),
                round(item.mean_power_w, 2),
                "yes" if item.tamper_evident else "no",
            )
        return table


def _measure_hyperprov(requests: int, payload_bytes: int, seed: int) -> SystemComparison:
    deployment = build_rpi_deployment(seed=seed)
    runner = StoreDataRunner(deployment)
    result = runner.run(RunConfig(data_size_bytes=payload_bytes, request_count=requests, seed=seed))
    window = (0.0, max(1.0, deployment.engine.now))
    power = PowerModel(deployment.client_device).power_over(window).watts
    return SystemComparison(
        system="hyperprov",
        throughput_tps=result.throughput_tps,
        mean_latency_s=result.mean_response_s,
        mean_power_w=power,
        tamper_evident=True,
    )


def _measure_provchain(requests: int, payload_bytes: int, seed: int,
                       difficulty_bits: int) -> SystemComparison:
    device = DeviceModel("rpi-miner", RASPBERRY_PI_3B_PLUS, rng=DeterministicRandom(seed))
    chain = PowProvenanceChain(device, difficulty_bits=difficulty_bits,
                               rng=DeterministicRandom(seed))
    store = chain.as_store()
    generator = PayloadGenerator(size_bytes=payload_bytes, seed=seed, prefix="pow")
    cursor = 0.0
    latencies = []
    for item in generator.items(requests):
        outcome = store.submit(StoreRequest(key=item.key, data=item.data), at_time=cursor)
        latencies.append(outcome.latency_s)
        cursor = outcome.committed_at
    makespan = max(cursor, 1e-9)
    power = PowerModel(device).power_over((0.0, makespan)).watts
    return SystemComparison(
        system="provchain-pow",
        throughput_tps=requests / makespan,
        mean_latency_s=sum(latencies) / len(latencies),
        mean_power_w=power,
        tamper_evident=True,
    )


def _measure_central_db(requests: int, payload_bytes: int, seed: int) -> SystemComparison:
    server = DeviceModel("db-server", XEON_E5_1603, rng=DeterministicRandom(seed))
    database = CentralProvenanceDatabase(server_device=server)
    store = database.as_store()
    generator = PayloadGenerator(size_bytes=payload_bytes, seed=seed, prefix="central")
    cursor = 0.0
    latencies = []
    for item in generator.items(requests):
        outcome = store.submit(StoreRequest(key=item.key, data=item.data), at_time=cursor)
        latencies.append(outcome.latency_s)
        cursor = outcome.committed_at
    makespan = max(cursor, 1e-9)
    power = PowerModel(server).power_over((0.0, makespan)).watts
    return SystemComparison(
        system="central-db",
        throughput_tps=requests / makespan,
        mean_latency_s=sum(latencies) / len(latencies),
        mean_power_w=power,
        tamper_evident=False,
    )


def run_baseline_comparison(
    requests: int = 25,
    payload_bytes: int = 1024,
    pow_difficulty_bits: int = 22,
    seed: int = 42,
) -> BaselineReport:
    """Store the same workload through HyperProv and both baselines."""
    report = BaselineReport()
    report.entries.append(_measure_hyperprov(requests, payload_bytes, seed))
    report.entries.append(_measure_provchain(requests, payload_bytes, seed, pow_difficulty_bits))
    report.entries.append(_measure_central_db(requests, payload_bytes, seed))
    return report


def main() -> None:  # pragma: no cover - CLI convenience
    report = run_baseline_comparison()
    table = report.to_table()
    table.add_note("expected shape: hyperprov ≫ provchain-pow on throughput at far lower power; "
                   "central-db is fastest but offers no tamper evidence")
    print(table.render())


if __name__ == "__main__":  # pragma: no cover
    main()
