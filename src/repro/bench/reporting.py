"""Result tables and formatting helpers for the benchmark harness."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


def format_si(value: float, unit: str = "") -> str:
    """Human-readable SI formatting (1536 → ``1.5 k``)."""
    magnitude = abs(value)
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if magnitude >= threshold:
            return f"{value / threshold:.2f} {suffix}{unit}".rstrip()
    return f"{value:.2f} {unit}".rstrip()


def format_seconds(value: float) -> str:
    """Format a duration with an appropriate unit."""
    if value != value:  # NaN
        return "n/a"
    if value >= 1.0:
        return f"{value:.2f} s"
    if value >= 1e-3:
        return f"{value * 1e3:.1f} ms"
    return f"{value * 1e6:.0f} µs"


def format_bytes(value: float) -> str:
    """Format a byte count (1048576 → ``1.0 MiB``)."""
    magnitude = abs(value)
    for threshold, suffix in ((1024 ** 3, "GiB"), (1024 ** 2, "MiB"), (1024, "KiB")):
        if magnitude >= threshold:
            return f"{value / threshold:.1f} {suffix}"
    return f"{value:.0f} B"


@dataclass
class ResultTable:
    """A titled table of benchmark results with text and CSV rendering."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but the table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def render(self) -> str:
        """Fixed-width text rendering suitable for the console and EXPERIMENTS.md."""
        header = [str(column) for column in self.columns]
        body = [[self._cell(value) for value in row] for row in self.rows]
        widths = [len(column) for column in header]
        for row in body:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def render_row(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

        lines = [self.title, "=" * len(self.title), render_row(header),
                 render_row(["-" * w for w in widths])]
        lines.extend(render_row(row) for row in body)
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    @staticmethod
    def _cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)
