"""Ablation: in-flight submission depth sweep (futures-based write path).

The unified API's ``submit()`` is non-blocking: multiple endorsed
envelopes stay in flight through the endorsement batcher and the
orderer's block cutter at once.  This bench sweeps the closed loop's
in-flight depth with a fixed payload and reports how throughput and
response time move — depth 1 reproduces a strictly blocking client
(every block is cut by the batch timeout), while deeper pipelines let
blocks fill by message count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.bench.reporting import ResultTable, format_seconds
from repro.bench.runner import RunConfig, RunResult, StoreDataRunner
from repro.core.topology import build_desktop_deployment

DEFAULT_DEPTHS: Sequence[int] = (1, 2, 4, 8, 16)


@dataclass
class ConcurrencyAblation:
    """Results of the in-flight depth sweep."""

    depths: List[int] = field(default_factory=list)
    results: List[RunResult] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Throughput at the deepest pipeline relative to depth 1."""
        if len(self.results) < 2 or self.results[0].throughput_tps <= 0:
            return 1.0
        return self.results[-1].throughput_tps / self.results[0].throughput_tps

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Ablation — in-flight submission depth (64 KiB payloads, desktop setup)",
            columns=["in-flight depth", "throughput (tx/s)", "mean response",
                     "p50 response", "p95 response"],
        )
        for depth, result in zip(self.depths, self.results):
            table.add_row(
                depth,
                round(result.throughput_tps, 2),
                format_seconds(result.mean_response_s),
                format_seconds(result.p50_response_s),
                format_seconds(result.p95_response_s),
            )
        table.add_note(
            f"throughput speedup from keeping {self.depths[-1] if self.depths else '?'} "
            f"submissions in flight vs. 1: {self.speedup:.2f}x"
        )
        return table


def run_concurrency_ablation(
    depths: Sequence[int] = DEFAULT_DEPTHS,
    payload_bytes: int = 64 * 1024,
    requests: int = 30,
    seed: int = 42,
) -> ConcurrencyAblation:
    """Sweep the closed loop's in-flight depth on the desktop setup."""
    ablation = ConcurrencyAblation()
    for depth in depths:
        deployment = build_desktop_deployment(seed=seed)
        runner = StoreDataRunner(deployment)
        result = runner.run(
            RunConfig(
                data_size_bytes=payload_bytes,
                request_count=requests,
                concurrency=depth,
                seed=seed,
            )
        )
        ablation.depths.append(depth)
        ablation.results.append(result)
    return ablation


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_concurrency_ablation().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
