"""Fig. 1 — throughput and response times vs data size on the desktop setup.

The paper: "Fig. 1 shows how increasing the size of data items impacts
both throughput and response times, when off-chain storage is involved for
desktop machines which incurs the overhead of data transfer and checksum
calculation."  The expected shape is monotonically decreasing throughput
and increasing response time as items grow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.bench.reporting import ResultTable, format_bytes, format_seconds
from repro.bench.runner import RunConfig, RunResult, StoreDataRunner
from repro.consensus.batching import BatchConfig
from repro.core.topology import build_desktop_deployment
from repro.middleware.config import PipelineConfig

#: Data item sizes swept by the figure (1 KiB … 4 MiB).
DEFAULT_SIZES: Sequence[int] = (
    1 * 1024,
    16 * 1024,
    64 * 1024,
    256 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
)


@dataclass
class FigureSeries:
    """One measured series: size → (throughput, response time)."""

    setup: str
    results: List[RunResult] = field(default_factory=list)

    def sizes(self) -> List[int]:
        return [r.config.data_size_bytes for r in self.results]

    def throughputs(self) -> List[float]:
        return [r.throughput_tps for r in self.results]

    def response_times(self) -> List[float]:
        return [r.mean_response_s for r in self.results]

    def to_table(self, title: str) -> ResultTable:
        table = ResultTable(
            title=title,
            columns=[
                "data size",
                "throughput (tx/s)",
                "mean response",
                "p95 response",
                "storage share",
                "committed",
            ],
        )
        for result in self.results:
            storage_share = (
                result.mean_storage_s / result.mean_response_s
                if result.mean_response_s and result.mean_response_s == result.mean_response_s
                else 0.0
            )
            table.add_row(
                format_bytes(result.config.data_size_bytes),
                round(result.throughput_tps, 2),
                format_seconds(result.mean_response_s),
                format_seconds(result.p95_response_s),
                f"{storage_share * 100:.0f}%",
                result.committed,
            )
        return table


def run_fig1(
    sizes: Sequence[int] = DEFAULT_SIZES,
    requests_per_size: int = 30,
    batch_config: Optional[BatchConfig] = None,
    seed: int = 42,
    pipeline: Optional[PipelineConfig] = None,
    concurrency: Optional[int] = None,
) -> FigureSeries:
    """Reproduce Fig. 1 on the simulated desktop testbed.

    A fresh deployment is built per data size so runs are independent
    (matching how the paper reports one measurement series per size).
    ``pipeline`` optionally swaps the client's middleware configuration for
    ablations (cache, retry, endorsement batching); ``concurrency``
    overrides the closed loop's in-flight depth.
    """
    series = FigureSeries(setup="desktop")
    for size in sizes:
        deployment = build_desktop_deployment(batch_config=batch_config, seed=seed)
        runner = StoreDataRunner(deployment)
        config = RunConfig(
            data_size_bytes=size,
            request_count=requests_per_size,
            seed=seed,
            pipeline=pipeline,
        )
        if concurrency is not None:
            config.concurrency = concurrency
        series.results.append(runner.run(config))
    return series


def main() -> None:  # pragma: no cover - CLI convenience
    series = run_fig1()
    table = series.to_table("Fig. 1 — desktop: throughput and response time vs data size")
    table.add_note("shape check: throughput falls and response time rises with size")
    print(table.render())


if __name__ == "__main__":  # pragma: no cover
    main()
