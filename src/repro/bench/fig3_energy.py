"""Fig. 3 — energy consumption on the RPi over 10-minute intervals.

The paper measures an RPi running both the peer and the client for
10-minute intervals at different load levels and reports that HyperProv
idling "barely consumes any power (2.71 W)" over an idle RPi, that peak
load is only ~10.7 % above idle on average, and that the maximum draw is
3.64 W.  The bench reproduces the interval series: idle without HLF, idle
with HLF, and three increasing StoreData load levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.protocol import StoreRequest
from repro.bench.reporting import ResultTable
from repro.core.topology import build_rpi_deployment
from repro.devices.model import DeviceModel
from repro.devices.profiles import RASPBERRY_PI_3B_PLUS
from repro.energy.meter import IntervalReport, PowerMeter
from repro.energy.power import PowerModel
from repro.simulation.randomness import DeterministicRandom
from repro.workloads.arrivals import PoissonSchedule
from repro.workloads.payloads import PayloadGenerator

#: The paper's measurement interval (10 minutes).
INTERVAL_SECONDS = 600.0

#: Load levels: label → StoreData arrivals per second (1 KiB payloads).
DEFAULT_LOAD_LEVELS: Dict[str, float] = {
    "idle (no HLF)": 0.0,
    "idle (HLF running)": 0.0,
    "low load": 0.5,
    "medium load": 2.0,
    "peak load": 5.0,
}


@dataclass
class EnergyFigure:
    """Per-interval power reports, in measurement order."""

    intervals: List[IntervalReport] = field(default_factory=list)

    def report_for(self, label: str) -> IntervalReport:
        for interval in self.intervals:
            if interval.label == label:
                return interval
        raise KeyError(label)

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Fig. 3 — RPi energy consumption, 10-minute intervals",
            columns=["interval", "mean power (W)", "max power (W)", "energy (Wh)"],
        )
        for interval in self.intervals:
            table.add_row(
                interval.label,
                round(interval.mean_watts, 2),
                round(interval.max_watts, 2),
                round(interval.energy_wh, 3),
            )
        return table


def _measure_idle_without_hlf(duration_s: float) -> IntervalReport:
    """Power of a bare RPi with no HLF containers over one interval."""
    device = DeviceModel(
        name="rpi-idle",
        profile=RASPBERRY_PI_3B_PLUS,
        rng=DeterministicRandom(7),
        hlf_running=False,
    )
    meter = PowerMeter(PowerModel(device), sample_interval_s=10.0)
    return meter.measure_interval(0.0, duration_s, label="idle (no HLF)")


def _measure_load_level(
    label: str,
    rate_per_s: float,
    duration_s: float,
    payload_bytes: int,
    seed: int,
) -> IntervalReport:
    """Run a StoreData load level on a fresh RPi deployment and meter the
    device that hosts both the peer and the client (as in the paper)."""
    deployment = build_rpi_deployment(seed=seed)
    store = deployment.client.as_store()
    measured_device = deployment.client_device

    if rate_per_s > 0.0:
        schedule = PoissonSchedule(rate_per_s=rate_per_s, duration_s=duration_s, seed=seed)
        generator = PayloadGenerator(size_bytes=payload_bytes, seed=seed, prefix=f"energy/{label}")
        # Submissions run as engine events so device time is charged at the
        # arrival instants, not retroactively after the interval.
        for arrival in schedule.arrival_times():
            item = generator.next_item()
            deployment.engine.schedule_at(
                arrival,
                lambda item=item: store.submit(StoreRequest(key=item.key, data=item.data)),
                label="energy:store_data",
            )
        deployment.drain()
    # Ensure the virtual clock covers the whole interval even when idle.
    deployment.engine.run(until=duration_s)

    meter = PowerMeter(PowerModel(measured_device), sample_interval_s=10.0)
    return meter.measure_interval(0.0, duration_s, label=label)


def run_fig3(
    load_levels: Optional[Dict[str, float]] = None,
    interval_s: float = INTERVAL_SECONDS,
    payload_bytes: int = 1024,
    seed: int = 42,
) -> EnergyFigure:
    """Reproduce the Fig. 3 interval series."""
    levels = load_levels or DEFAULT_LOAD_LEVELS
    figure = EnergyFigure()
    for label, rate in levels.items():
        if label == "idle (no HLF)":
            figure.intervals.append(_measure_idle_without_hlf(interval_s))
        else:
            figure.intervals.append(
                _measure_load_level(label, rate, interval_s, payload_bytes, seed)
            )
    return figure


def main() -> None:  # pragma: no cover - CLI convenience
    figure = run_fig3()
    table = figure.to_table()
    table.add_note("paper reference points: idle-with-HLF 2.71 W, peak max 3.64 W, "
                   "peak mean ≈ 10.7% above idle")
    print(table.render())


if __name__ == "__main__":  # pragma: no cover
    main()
