"""``bench chaos`` — deterministic fault-injection scenarios with invariants.

Five scenarios exercise the failure-handling stack end to end, each built
from a fresh deployment, a declarative :class:`~repro.faults.FaultPlan`
and an event-driven workload on the virtual clock:

``partition_heal``
    The client's host is cut off from every peer, then healed.  Reads
    during the cut are answered from the stale archive with an explicit
    ``stale`` marker; writes park in the store-and-forward queue and
    replay after the heal.  Invariants: staleness is bounded (fresh again
    after heal), every parked write commits exactly once, and the
    standing continuous query sees each committed write exactly once
    across the heal.
``byzantine_tamper``
    Two peers rewrite a committed transaction in their ledger copies.
    Invariants: no tampered write reaches any world state, hash-chain
    verification breaks on exactly the byzantine peers, and the commit
    log is byte-identical to a tamper-free run of the same workload.
``orderer_stall``
    The ordering service stops cutting blocks mid-run.  Invariants: the
    intake backlog grows while stalled (observed by a mid-stall probe),
    drains to zero after resume, and every submission commits exactly
    once.
``churn_fair_share``
    A second tenant's device churns off the network while the first
    tenant keeps writing through the fair-share scheduler.  Invariants:
    the unaffected tenant's commit latency stays bounded through the
    churn and the replay burst, and the churned tenant's writes all land
    exactly once after the device returns.
``link_degrade``
    The client→orderer link gets slow and lossy for a window (extra
    latency, modelled retransmissions, spurious duplicates) without being
    severed.  Invariants: every write still commits exactly once
    everywhere, in-window commits are strictly slower than pre-window
    ones, post-window commits recover, and the fabric's ``fault.dropped``
    / ``fault.duplicated`` counters prove the wire-level degradation.

Every scenario reduces to a SHA-256 **anchor** over its virtual-time
observations (commit log, read results, fault log, stop reason).  The
full profile runs each scenario twice and fails unless both passes
produce the same anchor; CI gates a fresh ``--smoke`` run against the
anchors committed in ``BENCH_PERF.json`` — any change that moves
simulated time under faults fails the gate regardless of wall-clock
speed.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.api.protocol import StoreRequest
from repro.bench.perf import PerfRegressionError
from repro.bench.reporting import ResultTable, format_seconds
from repro.common.hashing import checksum_of
from repro.consensus.batching import BatchConfig
from repro.core.client import HyperProvClient
from repro.core.topology import DeploymentSpec, HyperProvDeployment, build_deployment
from repro.devices.model import DeviceModel
from repro.devices.profiles import DESKTOP_PROFILES, XEON_E5_1603
from repro.fabric.proposal import TransactionHandle
from repro.faults import (
    ByzantineFault,
    ChurnFault,
    FaultInjector,
    FaultPlan,
    LinkDegradeFault,
    OrdererStallFault,
    PartitionFault,
)
from repro.ledger.transaction import TxValidationCode
from repro.membership.identity import Organization
from repro.middleware.config import PipelineConfig
from repro.query.continuous import ContinuousQueryRegistry
from repro.simulation.randomness import DeterministicRandom

#: Seed shared by every scenario (deployment build + fault plan).
CHAOS_SEED = 42

#: Virtual seconds an unaffected tenant's write may take from submission
#: to commit while another tenant churns and replays (fair-share floor).
FAIR_SHARE_LATENCY_BOUND_S = 3.0


class ChaosInvariantError(PerfRegressionError):
    """A chaos scenario's correctness invariant was violated."""


def _require(condition: bool, scenario: str, message: str) -> None:
    if not condition:
        raise ChaosInvariantError(f"chaos {scenario}: invariant violated — {message}")


# ----------------------------------------------------------------- anchors
def _handle_line(label: str, handle: TransactionHandle) -> str:
    """Everything virtual-time-observable about one write, as one line."""
    code = handle.validation_code.name if handle.validation_code else "PENDING"
    return (
        f"{label} tx={handle.tx_id} submit={handle.submitted_at!r} "
        f"commit={handle.committed_at!r} code={code} block={handle.commit_block}"
    )


def _digest(lines: List[str]) -> str:
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class ChaosScenarioResult:
    """One scenario's determinism anchor plus its checked invariants."""

    name: str
    anchor: str
    wall_s: float
    invariants: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        return {
            "anchor": self.anchor,
            "invariants": dict(self.invariants),
            "wall_s": round(self.wall_s, 4),
        }


@dataclass
class ChaosBenchReport:
    """Every scenario's result at one seed, plus the repeat discipline."""

    seed: int
    repeats: int
    scenarios: List[ChaosScenarioResult]

    def scenario(self, name: str) -> ChaosScenarioResult:
        for result in self.scenarios:
            if result.name == name:
                return result
        raise KeyError(name)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "repeats": self.repeats,
            "scenarios": {r.name: r.to_dict() for r in self.scenarios},
        }

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title=(
                f"bench chaos — {len(self.scenarios)} fault scenarios "
                f"(seed {self.seed}, {self.repeats} pass(es) each)"
            ),
            columns=["scenario", "anchor", "wall time", "invariants"],
        )
        for result in self.scenarios:
            table.add_row(
                result.name,
                result.anchor[:16],
                format_seconds(result.wall_s),
                ", ".join(
                    f"{key}={value}" for key, value in sorted(result.invariants.items())
                ),
            )
        if self.repeats > 1:
            table.add_note(
                "each scenario ran twice with identical anchors "
                "(same seed ⇒ byte-identical fault schedule and commit log)"
            )
        return table


# ------------------------------------------------------------ deployments
def _edge_spec(name: str, seed: int, scheduler: str = "fifo") -> DeploymentSpec:
    """Desktop profiles with the client on its *own* network node.

    The stock desktop spec co-locates the client with a peer; chaos
    partitions need to cut the client's host off alone, so it gets a
    dedicated node ("client") instead.
    """
    return DeploymentSpec(
        name=name,
        peer_profiles=DESKTOP_PROFILES,
        orderer_profile=XEON_E5_1603,
        storage_profile=XEON_E5_1603,
        client_profile=DESKTOP_PROFILES[2],
        client_colocated_with=None,
        scheduler=scheduler,
        # Single-message blocks: chaos exercises failure handling, not
        # batching, and immediate commits keep the timelines legible.
        batch_config=BatchConfig(max_message_count=1),
        seed=seed,
    )


def _submitter(
    store, handles: List[Tuple[str, TransactionHandle]]
) -> Callable[[str, str], None]:
    def submit(key: str, checksum: str) -> None:
        outcome = store.submit(
            StoreRequest(
                key=key, checksum=checksum, location="edge://chaos", size_bytes=256
            )
        )
        handles.append((key, outcome.handle))

    return submit


def _assert_committed_everywhere(
    scenario: str, deployment: HyperProvDeployment, handles: List[Tuple[str, TransactionHandle]]
) -> None:
    """Every handle committed VALID, exactly once, on every online peer."""
    tx_ids = [handle.tx_id for _, handle in handles]
    _require(
        len(set(tx_ids)) == len(tx_ids),
        scenario,
        f"duplicate transaction ids in the commit log: {tx_ids}",
    )
    for key, handle in handles:
        _require(
            handle.validation_code is TxValidationCode.VALID,
            scenario,
            f"write {key!r} (tx {handle.tx_id}) did not commit VALID: "
            f"{handle.validation_code}",
        )
        for peer in deployment.peers:
            _require(
                peer.committed(handle.tx_id),
                scenario,
                f"peer {peer.name!r} never committed tx {handle.tx_id} ({key!r})",
            )


# ---------------------------------------------------- scenario: partition
def _scenario_partition_heal(seed: int) -> ChaosScenarioResult:
    deployment = build_deployment(_edge_spec("chaos-partition", seed))
    deployment.client.configure_pipeline(
        PipelineConfig(
            cache=True,
            stale_reads=True,
            store_and_forward=True,
            saf_replay_interval_s=0.5,
            saf_max_replays=32,
        )
    )
    store = deployment.client.as_store()
    engine = deployment.engine

    deliveries: List[Dict[str, object]] = []
    registry = ContinuousQueryRegistry(deployment.fabric.events)
    registry.register({"_prefix": "p"}, callback=deliveries.append)

    v1 = checksum_of(b"chaos-partition-v1")
    v2 = checksum_of(b"chaos-partition-v2")
    handles: List[Tuple[str, TransactionHandle]] = []
    submit = _submitter(store, handles)
    reads: Dict[str, Tuple[str, bool]] = {}

    def read(tag: str, key: str) -> None:
        view = store.get(key)
        reads[tag] = (view.checksum, view.stale)

    # Steady state: four records, then a read that primes cache + archive,
    # then an update that invalidates the cache (the archive keeps v1).
    for index, at in enumerate((0.2, 0.4, 0.6, 0.8)):
        engine.schedule_at(at, lambda i=index: submit(f"pk{i}", v1))
    engine.schedule_at(2.0, lambda: read("prime", "pk0"))
    engine.schedule_at(2.5, lambda: submit("pk0", v2))

    plan = FaultPlan(
        seed=seed, faults=(PartitionFault(4.0, 7.0, (("client",),)),)
    ).validate()
    injector = FaultInjector(plan, deployment.fabric).install()

    # During the cut: the read degrades to the stale archive, the writes
    # park in the store-and-forward queue.
    engine.schedule_at(5.0, lambda: read("during", "pk0"))
    for index, at in enumerate((5.2, 5.6, 6.0)):
        engine.schedule_at(at, lambda i=index: submit(f"pp{i}", v1))
    engine.schedule_at(9.0, lambda: read("after", "pk0"))

    outcome = deployment.fabric.flush_and_drain()

    _require(
        outcome.stop_reason == "idle",
        "partition_heal",
        f"run did not quiesce: stop reason {outcome.stop_reason!r}",
    )
    _require(
        reads["prime"] == (v1, False),
        "partition_heal",
        f"pre-partition read was not fresh v1: {reads['prime']}",
    )
    _require(
        reads["during"] == (v1, True),
        "partition_heal",
        "read during the partition must serve the archived v1 with the "
        f"stale marker set, got {reads['during']}",
    )
    _require(
        reads["after"] == (v2, False),
        "partition_heal",
        f"staleness is unbounded: post-heal read returned {reads['after']}",
    )
    _assert_committed_everywhere("partition_heal", deployment, handles)
    parked = [handle for key, handle in handles if key.startswith("pp")]
    for handle in parked:
        _require(
            handle.committed_at >= 7.0,
            "partition_heal",
            f"parked write {handle.tx_id} committed at {handle.committed_at} "
            "— before the partition healed",
        )
    delivered_ids = [str(event["tx_id"]) for event in deliveries]
    _require(
        len(delivered_ids) == len(set(delivered_ids)),
        "partition_heal",
        f"continuous query delivered a commit twice: {delivered_ids}",
    )
    _require(
        set(delivered_ids) == {handle.tx_id for _, handle in handles},
        "partition_heal",
        "continuous query missed a committed write across the heal: "
        f"delivered {sorted(delivered_ids)}",
    )

    lines = [_handle_line(key, handle) for key, handle in handles]
    lines += [f"read {tag} {reads[tag]!r}" for tag in sorted(reads)]
    lines += [f"delivery {tx_id}" for tx_id in delivered_ids]
    lines += [f"fault {entry!r}" for entry in injector.log]
    lines.append(f"stop {outcome.stop_reason}")
    return ChaosScenarioResult(
        name="partition_heal",
        anchor=_digest(lines),
        wall_s=0.0,
        invariants={
            "writes": len(handles),
            "parked_replayed": len(parked),
            "stale_reads": 1,
            "cq_deliveries": len(delivered_ids),
        },
    )


# ---------------------------------------------------- scenario: byzantine
def _byzantine_workload(
    seed: int, tamper: bool
) -> Tuple[HyperProvDeployment, List[Tuple[str, TransactionHandle]], List[Dict[str, object]], str]:
    deployment = build_deployment(_edge_spec("chaos-byzantine", seed))
    store = deployment.client.as_store()
    engine = deployment.engine
    checksum = checksum_of(b"chaos-byzantine")
    handles: List[Tuple[str, TransactionHandle]] = []
    submit = _submitter(store, handles)
    for index in range(6):
        engine.schedule_at(
            0.2 + 0.2 * index, lambda i=index: submit(f"bz{i}", checksum)
        )
    log: List[Dict[str, object]] = []
    if tamper:
        plan = FaultPlan(
            seed=seed,
            faults=(
                ByzantineFault(3.0, "peer0.org1"),
                ByzantineFault(3.1, "peer1.org2"),
            ),
        )
        injector = FaultInjector(plan, deployment.fabric).install()
        log = injector.log
    # Symmetric no-op tick so both runs execute the same event count.
    engine.schedule_at(3.5, lambda: None)
    outcome = deployment.fabric.flush_and_drain()
    return deployment, handles, log, outcome.stop_reason


def _scenario_byzantine_tamper(seed: int) -> ChaosScenarioResult:
    deployment, handles, fault_log, stop = _byzantine_workload(seed, tamper=True)
    baseline, clean_handles, _, _ = _byzantine_workload(seed, tamper=False)

    commit_lines = [_handle_line(key, handle) for key, handle in handles]
    clean_lines = [_handle_line(key, handle) for key, handle in clean_handles]
    _require(
        commit_lines == clean_lines,
        "byzantine_tamper",
        "post-commit tampering must not move the commit log — the "
        "tampered run's virtual times differ from the clean run",
    )

    byzantine = {"peer0.org1", "peer1.org2"}
    for peer in deployment.peers:
        intact = peer.block_store.verify_chain()
        if peer.name in byzantine:
            _require(
                not intact,
                "byzantine_tamper",
                f"rewrite on {peer.name!r} left its hash chain verifying",
            )
        else:
            _require(
                intact,
                "byzantine_tamper",
                f"honest peer {peer.name!r} failed chain verification",
            )

    # No tampered transaction commits: every peer's world state matches the
    # clean run's byte for byte (the rewrite lives only in the forged
    # block copy, never in any state database).
    clean_state = baseline.peers[0].state_snapshot()
    for peer in deployment.peers:
        _require(
            peer.state_snapshot() == clean_state,
            "byzantine_tamper",
            f"world state on {peer.name!r} diverged after the rewrite",
        )
    view = deployment.client.as_store().get("bz0")
    _require(
        view.checksum == checksum_of(b"chaos-byzantine") and not view.stale,
        "byzantine_tamper",
        f"read after tamper returned {view.checksum!r} (stale={view.stale})",
    )

    lines = list(commit_lines)
    lines += [f"fault {entry!r}" for entry in fault_log]
    lines += [
        f"verify {peer.name} {peer.block_store.verify_chain()}"
        for peer in deployment.peers
    ]
    lines.append(f"stop {stop}")
    return ChaosScenarioResult(
        name="byzantine_tamper",
        anchor=_digest(lines),
        wall_s=0.0,
        invariants={
            "writes": len(handles),
            "tampered_peers": len(byzantine),
            "honest_peers": len(deployment.peers) - len(byzantine),
            "commit_log_matches_clean_run": True,
        },
    )


# ------------------------------------------------------- scenario: stall
def _scenario_orderer_stall(seed: int) -> ChaosScenarioResult:
    deployment = build_deployment(_edge_spec("chaos-stall", seed))
    store = deployment.client.as_store()
    engine = deployment.engine
    checksum = checksum_of(b"chaos-stall")
    handles: List[Tuple[str, TransactionHandle]] = []
    submit = _submitter(store, handles)

    for index, at in enumerate((0.2, 0.4, 0.6)):
        engine.schedule_at(at, lambda i=index: submit(f"st{i}", checksum))

    plan = FaultPlan(seed=seed, faults=(OrdererStallFault(1.0, 3.0),))
    injector = FaultInjector(plan, deployment.fabric).install()

    for index, at in enumerate((1.4, 1.8, 2.2)):
        engine.schedule_at(at, lambda i=index + 3: submit(f"st{i}", checksum))

    probe: Dict[str, object] = {}

    def mid_stall_probe() -> None:
        shard = deployment.fabric.shard(0)
        probe["stalled"] = shard.orderer.stalled
        probe["backlog"] = shard.orderer.intake_backlog
        probe["in_flight"] = deployment.fabric.in_flight()

    engine.schedule_at(2.6, mid_stall_probe)
    outcome = deployment.fabric.flush_and_drain()

    _require(
        bool(probe.get("stalled")),
        "orderer_stall",
        f"mid-stall probe did not observe the stall: {probe}",
    )
    _require(
        int(probe.get("backlog", 0)) >= 1 and int(probe.get("in_flight", 0)) >= 3,
        "orderer_stall",
        f"backlog did not accumulate while stalled: {probe}",
    )
    _require(
        outcome.stop_reason == "idle",
        "orderer_stall",
        f"backlog never drained: stop reason {outcome.stop_reason!r}",
    )
    shard = deployment.fabric.shard(0)
    _require(
        shard.orderer.intake_backlog == 0,
        "orderer_stall",
        f"intake backlog still holds {shard.orderer.intake_backlog} envelopes",
    )
    _assert_committed_everywhere("orderer_stall", deployment, handles)
    for key, handle in handles[3:]:
        _require(
            handle.committed_at >= 3.0,
            "orderer_stall",
            f"{key!r} committed at {handle.committed_at} — while the "
            "orderer was stalled",
        )

    lines = [_handle_line(key, handle) for key, handle in handles]
    lines.append(
        f"probe stalled={probe['stalled']} backlog={probe['backlog']} "
        f"in_flight={probe['in_flight']}"
    )
    lines += [f"fault {entry!r}" for entry in injector.log]
    lines.append(f"stop {outcome.stop_reason}")
    return ChaosScenarioResult(
        name="orderer_stall",
        anchor=_digest(lines),
        wall_s=0.0,
        invariants={
            "writes": len(handles),
            "stalled_backlog": int(probe["backlog"]),
            "drained_backlog": 0,
        },
    )


# ------------------------------------------------------- scenario: churn
def _scenario_churn_fair_share(seed: int) -> ChaosScenarioResult:
    deployment = build_deployment(
        _edge_spec("chaos-churn", seed, scheduler="fair-share")
    )
    deployment.client.configure_pipeline(PipelineConfig(tenant="alpha"))

    # Second tenant on its own device; its organization joins the MSP so
    # endorsement signature checks pass for both tenants.
    tenant_org = Organization("tenant-b-org")
    deployment.channel.msp.add_organization(tenant_org)
    device_b = DeviceModel(
        name="client-b",
        profile=deployment.spec.client_profile,
        rng=DeterministicRandom(seed).fork("device:client-b"),
    )
    deployment.fabric.add_client(
        "tenant-b",
        identity=tenant_org.enroll("tenant-b", role="client"),
        device=device_b,
        host_node="client-b",
        anchor_peer=deployment.peers[0].name,
    )
    client_b = HyperProvClient(
        network=deployment.fabric, client_name="tenant-b", storage=deployment.storage
    )
    client_b.configure_pipeline(
        PipelineConfig(
            tenant="beta",
            store_and_forward=True,
            saf_replay_interval_s=0.5,
            saf_max_replays=32,
        )
    )

    engine = deployment.engine
    checksum = checksum_of(b"chaos-churn")
    handles_a: List[Tuple[str, TransactionHandle]] = []
    handles_b: List[Tuple[str, TransactionHandle]] = []
    submit_a = _submitter(deployment.client.as_store(), handles_a)
    submit_b = _submitter(client_b.as_store(), handles_b)

    plan = FaultPlan(seed=seed, faults=(ChurnFault(2.0, 5.0, "client-b"),))
    injector = FaultInjector(plan, deployment.fabric).install()

    for index, at in enumerate((0.5, 1.5, 2.5, 3.5, 4.5, 5.5)):
        engine.schedule_at(at, lambda i=index: submit_a(f"a{i}", checksum))
    for index, at in enumerate((1.0, 2.6, 3.2, 5.8)):
        engine.schedule_at(at, lambda i=index: submit_b(f"b{i}", checksum))

    outcome = deployment.fabric.flush_and_drain()

    _require(
        outcome.stop_reason == "idle",
        "churn_fair_share",
        f"run did not quiesce: stop reason {outcome.stop_reason!r}",
    )
    _assert_committed_everywhere(
        "churn_fair_share", deployment, handles_a + handles_b
    )
    # Fair share for the unaffected tenant: every commit latency stays
    # bounded through the other tenant's churn window and replay burst.
    for key, handle in handles_a:
        latency = handle.committed_at - handle.submitted_at
        _require(
            latency <= FAIR_SHARE_LATENCY_BOUND_S,
            "churn_fair_share",
            f"tenant alpha write {key!r} took {latency:.3f}s to commit "
            f"(bound {FAIR_SHARE_LATENCY_BOUND_S}s) — starved by the churn",
        )
    churned = [handle for key, handle in handles_b if key in ("b1", "b2")]
    _require(len(churned) == 2, "churn_fair_share", "churned writes missing")
    for handle in churned:
        _require(
            handle.committed_at >= 5.0,
            "churn_fair_share",
            f"churned write {handle.tx_id} committed at {handle.committed_at} "
            "— before the device returned",
        )

    lines = [_handle_line(f"alpha:{key}", handle) for key, handle in handles_a]
    lines += [_handle_line(f"beta:{key}", handle) for key, handle in handles_b]
    lines += [f"fault {entry!r}" for entry in injector.log]
    lines.append(f"stop {outcome.stop_reason}")
    return ChaosScenarioResult(
        name="churn_fair_share",
        anchor=_digest(lines),
        wall_s=0.0,
        invariants={
            "alpha_writes": len(handles_a),
            "beta_writes": len(handles_b),
            "churn_replayed": len(churned),
            "alpha_latency_bound_s": FAIR_SHARE_LATENCY_BOUND_S,
        },
    )


# ------------------------------------------------- scenario: link degrade
def _scenario_link_degrade(seed: int) -> ChaosScenarioResult:
    """Degrade (not sever) the client→orderer link for a window.

    Every submission envelope sent during the window pays the configured
    extra latency, is "dropped" once (modelled as a retransmission: the
    transfer takes twice as long and the bytes go on the wire twice) and
    spuriously duplicated (bytes only).  Invariants: every write still
    commits VALID exactly once on every peer, commits during the window
    are strictly slower than before it, commits after the window recover,
    and the fabric's fault counters prove the degradation actually
    happened on the wire.
    """
    deployment = build_deployment(_edge_spec("chaos-linkdegrade", seed))
    store = deployment.client.as_store()
    engine = deployment.engine
    checksum = checksum_of(b"chaos-linkdegrade")
    handles: List[Tuple[str, TransactionHandle]] = []
    submit = _submitter(store, handles)

    plan = FaultPlan(
        seed=seed,
        faults=(
            LinkDegradeFault(
                2.0,
                4.0,
                source="client",
                destination="orderer",
                extra_latency_s=0.5,
                drop_rate=1.0,
                duplicate_rate=1.0,
            ),
        ),
    )
    injector = FaultInjector(plan, deployment.fabric).install()

    # Two writes before, during and after the window; same-length keys so
    # the per-message payload sizes (and device costs) line up exactly.
    phases = {"pre": (0.3, 0.8), "mid": (2.2, 2.7), "post": (6.0, 6.5)}
    tags = {"pre": "a", "mid": "b", "post": "c"}
    for phase, ats in phases.items():
        for index, at in enumerate(ats):
            engine.schedule_at(
                at, lambda p=tags[phase], i=index: submit(f"ld-{p}{i}", checksum)
            )

    outcome = deployment.fabric.flush_and_drain()

    _require(
        outcome.stop_reason == "idle",
        "link_degrade",
        f"run did not quiesce: stop reason {outcome.stop_reason!r}",
    )
    _assert_committed_everywhere("link_degrade", deployment, handles)

    latency: Dict[str, List[float]] = {phase: [] for phase in phases}
    for key, handle in handles:
        phase = {"a": "pre", "b": "mid", "c": "post"}[key[len("ld-")]]
        latency[phase].append(handle.committed_at - handle.submitted_at)
    _require(
        max(latency["pre"]) < min(latency["mid"]),
        "link_degrade",
        "degradation invisible: in-window commit latency "
        f"{latency['mid']} not above pre-window {latency['pre']}",
    )
    _require(
        max(latency["post"]) < min(latency["mid"]),
        "link_degrade",
        "degradation is unbounded: post-window commit latency "
        f"{latency['post']} not below in-window {latency['mid']}",
    )

    metrics = deployment.fabric.network.metrics
    dropped = metrics.counter("fault.dropped").value
    duplicated = metrics.counter("fault.duplicated").value
    _require(
        dropped >= len(phases["mid"]) and duplicated >= len(phases["mid"]),
        "link_degrade",
        f"fault counters did not move: dropped={dropped} "
        f"duplicated={duplicated}",
    )

    lines = [_handle_line(key, handle) for key, handle in handles]
    lines.append(f"counters dropped={dropped} duplicated={duplicated}")
    lines += [f"fault {entry!r}" for entry in injector.log]
    lines.append(f"stop {outcome.stop_reason}")
    return ChaosScenarioResult(
        name="link_degrade",
        anchor=_digest(lines),
        wall_s=0.0,
        invariants={
            "writes": len(handles),
            "degraded_window_s": 2.0,
            "dropped": int(dropped),
            "duplicated": int(duplicated),
        },
    )


SCENARIOS: Dict[str, Callable[[int], ChaosScenarioResult]] = {
    "partition_heal": _scenario_partition_heal,
    "byzantine_tamper": _scenario_byzantine_tamper,
    "orderer_stall": _scenario_orderer_stall,
    "churn_fair_share": _scenario_churn_fair_share,
    "link_degrade": _scenario_link_degrade,
}


def run_chaos(smoke: bool = False, seed: int = CHAOS_SEED) -> ChaosBenchReport:
    """Run every scenario; the full profile double-runs for determinism.

    ``smoke`` runs each scenario once (the CI shape — determinism is then
    checked against the committed anchors instead of a second pass).
    """
    repeats = 1 if smoke else 2
    results: List[ChaosScenarioResult] = []
    for name, scenario in SCENARIOS.items():
        passes: List[ChaosScenarioResult] = []
        wall: List[float] = []
        for _ in range(repeats):
            started = time.perf_counter()
            passes.append(scenario(seed))
            wall.append(time.perf_counter() - started)
        anchors = {result.anchor for result in passes}
        if len(anchors) != 1:
            raise ChaosInvariantError(
                f"chaos {name}: non-deterministic — two passes at seed {seed} "
                f"produced different anchors {sorted(anchors)}"
            )
        result = passes[0]
        result.wall_s = min(wall)
        results.append(result)
    return ChaosBenchReport(seed=seed, repeats=repeats, scenarios=results)


# ------------------------------------------------------------- persistence
def write_chaos_entry(report: ChaosBenchReport, path: Path) -> Dict[str, object]:
    """Merge the chaos anchors into ``path`` without touching other sections.

    Follows the ``bench fleet`` discipline: ``BENCH_PERF.json`` is shared
    across experiments, so this writer only replaces the ``chaos`` section.
    """
    document: Dict[str, object] = {}
    if path.exists():
        try:
            document = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            document = {}
    document["chaos"] = report.to_dict()
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def check_chaos_anchors(
    report: ChaosBenchReport, baseline_data: Dict[str, object]
) -> List[str]:
    """Gate a fresh run against the committed scenario anchors.

    A scenario absent from the baseline is skipped (new scenarios land
    with their first committed anchor); a present scenario must match
    byte for byte.
    """
    chaos = baseline_data.get("chaos")
    if not isinstance(chaos, dict):
        return []
    committed = chaos.get("scenarios")
    if not isinstance(committed, dict):
        return []
    failures = []
    for result in report.scenarios:
        entry = committed.get(result.name)
        if not isinstance(entry, dict) or "anchor" not in entry:
            continue
        anchor = str(entry["anchor"])
        if result.anchor != anchor:
            failures.append(
                f"chaos {result.name}: anchor {result.anchor} does not match "
                f"the committed baseline {anchor} — virtual time under "
                "faults moved"
            )
    return failures
