"""Per-operator latency table (technical-report style).

The paper's client library exposes ``Init``, ``Post``, ``Get``,
``StoreData``, ``GetData`` and the history/lineage queries; the companion
technical report breaks latency down per operator.  This bench measures
each operator once per setup with a fixed 1 KiB payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.api.protocol import StoreRequest
from repro.bench.reporting import ResultTable, format_seconds
from repro.middleware.metrics import STAGES
from repro.core.topology import (
    HyperProvDeployment,
    build_desktop_deployment,
    build_rpi_deployment,
)
from repro.workloads.payloads import PayloadGenerator


@dataclass
class OperatorLatencies:
    """Mean latency per client operator for one setup."""

    setup: str
    latencies_s: Dict[str, float] = field(default_factory=dict)
    #: Mean write-path latency attributed to each pipeline stage
    #: (``endorse`` / ``order`` / ``commit``), from the metrics middleware.
    stages_s: Dict[str, float] = field(default_factory=dict)


def _measure_setup(deployment: HyperProvDeployment, payload_bytes: int, repeats: int,
                   seed: int) -> OperatorLatencies:
    client = deployment.client
    store = client.as_store()
    generator = PayloadGenerator(size_bytes=payload_bytes, seed=seed, prefix="ops")
    latencies: Dict[str, List[float]] = {
        "post": [], "store_data": [], "get": [], "get_key_history": [],
        "check_hash": [], "get_data": [], "get_dependencies": [],
    }

    items = [generator.next_item() for _ in range(repeats)]

    # Write path: store_data (off-chain + on-chain) measured end to end.
    for item in items:
        start = deployment.engine.now
        post = store.submit(StoreRequest(key=item.key, data=item.data))
        deployment.drain()
        if post.done and post.ok:
            latencies["store_data"].append(post.committed_at - start)

    # Metadata-only post (data already stored elsewhere).
    for index, item in enumerate(items):
        start = deployment.engine.now
        post = store.submit(
            StoreRequest(
                key=f"ops/meta-{index}",
                checksum=item.checksum,
                location=f"file://preexisting/{index}",
                size_bytes=item.size_bytes,
            )
        )
        deployment.drain()
        if post.done and post.ok:
            latencies["post"].append(post.committed_at - start)

    # Read path.
    for item in items:
        latencies["get"].append(store.get(item.key).latency_s)
        latencies["get_key_history"].append(store.history(item.key).latency_s)
        latencies["check_hash"].append(store.verify(item.key, item.data).latency_s)
        latencies["get_dependencies"].append(client.get_dependencies(item.key).latency_s)
        latencies["get_data"].append(client.get_data(item.key).latency_s)

    means = {
        op: (sum(values) / len(values) if values else float("nan"))
        for op, values in latencies.items()
    }
    return OperatorLatencies(
        setup=deployment.spec.name,
        latencies_s=means,
        stages_s=collect_stage_breakdown(client.metrics),
    )


def collect_stage_breakdown(registry) -> Dict[str, float]:
    """Mean endorse/order/commit durations the metrics middleware recorded."""
    breakdown: Dict[str, float] = {}
    for stage, stage_metric in STAGES.items():
        histogram = registry.get_histogram(stage_metric)
        if histogram is not None and histogram.count:
            breakdown[stage] = histogram.mean
    return breakdown


def run_ops_table(payload_bytes: int = 1024, repeats: int = 5, seed: int = 42
                  ) -> List[OperatorLatencies]:
    """Measure the operator latency table on both setups."""
    desktop = _measure_setup(build_desktop_deployment(seed=seed), payload_bytes, repeats, seed)
    rpi = _measure_setup(build_rpi_deployment(seed=seed), payload_bytes, repeats, seed)
    return [desktop, rpi]


def to_table(results: List[OperatorLatencies]) -> ResultTable:
    """Render the operator × setup latency matrix."""
    operators = sorted({op for result in results for op in result.latencies_s})
    table = ResultTable(
        title="Client operator latencies (1 KiB payloads)",
        columns=["operator"] + [result.setup for result in results],
    )
    for operator in operators:
        table.add_row(
            operator,
            *[format_seconds(result.latencies_s.get(operator, float("nan"))) for result in results],
        )
    return table


def stage_table(results: List[OperatorLatencies]) -> ResultTable:
    """Render where write-path time goes: endorse vs. order vs. commit."""
    stages = list(STAGES)
    table = ResultTable(
        title="Write-path latency breakdown by pipeline stage",
        columns=["stage"] + [result.setup for result in results],
    )
    for stage in stages:
        table.add_row(
            stage,
            *[format_seconds(result.stages_s.get(stage, float("nan")))
              for result in results],
        )
    table.add_note(
        "endorse = proposal round trip; order = envelope transfer + queueing; "
        "commit = block cut, delivery, validation and commit notify"
    )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    results = run_ops_table()
    print(to_table(results).render())
    print()
    print(stage_table(results).render())


if __name__ == "__main__":  # pragma: no cover
    main()
