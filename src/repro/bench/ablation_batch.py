"""Ablation: orderer batch size (block cutting) sweep.

DESIGN.md calls out block cutting as one of the knobs that governs the
latency/throughput trade-off; this bench sweeps ``MaxMessageCount`` with a
fixed payload and reports how throughput and response time move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.bench.reporting import ResultTable, format_seconds
from repro.bench.runner import RunConfig, RunResult, StoreDataRunner
from repro.consensus.batching import BatchConfig
from repro.core.topology import build_desktop_deployment

DEFAULT_BATCH_SIZES: Sequence[int] = (1, 10, 50, 100)


@dataclass
class BatchAblation:
    """Results of the batch-size sweep."""

    batch_sizes: List[int] = field(default_factory=list)
    results: List[RunResult] = field(default_factory=list)

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Ablation — orderer batch size (64 KiB payloads, desktop setup)",
            columns=["max messages per block", "throughput (tx/s)", "mean response",
                     "p95 response"],
        )
        for batch_size, result in zip(self.batch_sizes, self.results):
            table.add_row(
                batch_size,
                round(result.throughput_tps, 2),
                format_seconds(result.mean_response_s),
                format_seconds(result.p95_response_s),
            )
        return table


def run_batch_ablation(
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    payload_bytes: int = 64 * 1024,
    requests: int = 40,
    batch_timeout_s: float = 2.0,
    seed: int = 42,
) -> BatchAblation:
    """Sweep ``MaxMessageCount`` and measure the StoreData workload."""
    ablation = BatchAblation()
    for batch_size in batch_sizes:
        config = BatchConfig(
            max_message_count=batch_size,
            batch_timeout_s=batch_timeout_s,
            preferred_max_bytes=16 * 1024 * 1024,
        )
        deployment = build_desktop_deployment(batch_config=config, seed=seed)
        runner = StoreDataRunner(deployment)
        # Keep more requests outstanding than the block can hold so every
        # batch size is measured at saturation (otherwise large blocks are
        # only ever cut by the timeout and the sweep measures the timeout).
        concurrency = max(16, batch_size + 2)
        result = runner.run(
            RunConfig(
                data_size_bytes=payload_bytes,
                request_count=requests,
                concurrency=concurrency,
                seed=seed,
            )
        )
        ablation.batch_sizes.append(batch_size)
        ablation.results.append(result)
    return ablation


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_batch_ablation().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
