"""Wall-clock performance harness (``bench perf``).

Every other experiment in this package reports *virtual-time* metrics:
latencies and throughputs as the modelled hardware would observe them.
Those numbers are invariant under optimizations of the simulator itself,
which makes them useless for tracking how fast the simulation *runs*.
This harness measures the complementary quantity — simulated transactions
(or queries) per *wall-clock* second — across the three hot paths the
ledger optimizations target:

``commit-heavy``
    The fig1 metadata-post workload (endorse → order → commit, no
    off-chain payload) at several request counts.  Dominated by envelope
    serialization, rw-set digests and per-peer block commits.
``range-query``
    ``getbyrange`` windows over a preloaded world state.  Dominated by
    the world-state key-space scan.
``rich-query``
    Prefix-scoped selector queries (``query``) over the same preloaded
    state.  Dominated by candidate-key selection and record parsing.
``read-mix``
    Alternating range and rich queries on one deployment — the combined
    read workload the ledger index accelerates end to end.

Results are written to ``BENCH_PERF.json`` (repo root by default) so the
perf trajectory has committed data points; ``check_regression`` compares
a fresh run against a committed baseline for the CI perf-smoke gate.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.reporting import ResultTable, format_seconds
from repro.bench.runner import RunConfig, StoreDataRunner
from repro.chaincode.records import ProvenanceRecord
from repro.common.hashing import checksum_of
from repro.core.topology import HyperProvDeployment, build_desktop_deployment

#: Default output location — the repo-root perf trajectory file.
DEFAULT_OUTPUT = "BENCH_PERF.json"

#: Keys are spread over this many ``perf/gNN/`` prefix groups so the
#: rich-query workload has a realistic candidate subset per selector.
PREFIX_GROUPS = 16


class PerfRegressionError(RuntimeError):
    """Raised when a run falls too far below the committed baseline."""


@dataclass
class PerfMeasurement:
    """One workload at one scale, measured in wall-clock time."""

    workload: str
    scale: int
    operations: int
    wall_s: float
    #: Simulated operations completed per wall-clock second — the number
    #: the optimizations move.
    wall_ops_per_s: float
    #: Mean *virtual-time* latency of the same operations.  Optimizations
    #: must not move this (no behavioural drift); recorded as the anchor.
    virtual_mean_s: float

    @property
    def label(self) -> str:
        return f"{self.workload}@{self.scale}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "scale": self.scale,
            "operations": self.operations,
            "wall_s": round(self.wall_s, 4),
            "wall_ops_per_s": round(self.wall_ops_per_s, 2),
            "virtual_mean_s": round(self.virtual_mean_s, 6),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PerfMeasurement":
        return cls(
            workload=str(data["workload"]),
            scale=int(data["scale"]),
            operations=int(data["operations"]),
            wall_s=float(data["wall_s"]),
            wall_ops_per_s=float(data["wall_ops_per_s"]),
            virtual_mean_s=float(data["virtual_mean_s"]),
        )


@dataclass
class PerfReport:
    """All measurements of one harness invocation."""

    measurements: List[PerfMeasurement] = field(default_factory=list)

    def find(self, workload: str, scale: int) -> Optional[PerfMeasurement]:
        for measurement in self.measurements:
            if measurement.workload == workload and measurement.scale == scale:
                return measurement
        return None

    def to_dict(self) -> Dict[str, object]:
        return {"measurements": [m.to_dict() for m in self.measurements]}

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="bench perf — wall-clock throughput of the simulation hot paths",
            columns=[
                "workload", "scale", "operations", "wall time",
                "wall ops/s", "virtual mean latency",
            ],
        )
        for m in self.measurements:
            table.add_row(
                m.workload, m.scale, m.operations, format_seconds(m.wall_s),
                round(m.wall_ops_per_s, 1), format_seconds(m.virtual_mean_s),
            )
        table.add_note(
            "wall ops/s is simulated operations per wall-clock second; the "
            "virtual mean latency column is the no-drift anchor (must not "
            "move when only wall-clock cost is optimized)"
        )
        return table


# --------------------------------------------------------------- workloads
def _measure_commit_heavy(requests: int, seed: int) -> PerfMeasurement:
    """The fig1 metadata-post workload, timed in wall-clock seconds."""
    deployment = build_desktop_deployment(seed=seed)
    runner = StoreDataRunner(deployment)
    config = RunConfig(
        data_size_bytes=4 * 1024,
        request_count=requests,
        seed=seed,
        metadata_only=True,
    )
    started = time.perf_counter()
    result = runner.run(config)
    wall = max(time.perf_counter() - started, 1e-9)
    return PerfMeasurement(
        workload="commit-heavy",
        scale=requests,
        operations=result.committed,
        wall_s=wall,
        wall_ops_per_s=result.committed / wall,
        virtual_mean_s=result.mean_response_s if result.committed else 0.0,
    )


def _perf_key(index: int) -> str:
    group = index % PREFIX_GROUPS
    return f"perf/g{group:02d}/item-{index:06d}"


def _preload_world_state(deployment: HyperProvDeployment, keys: int) -> List[str]:
    """Seed every peer's world state with ``keys`` provenance records.

    Loading through the full endorse/order/commit path would take minutes
    at 10k keys on the unoptimized code; the read workloads only need
    committed state to scan, so the records are installed directly.
    """
    loaded: List[str] = []
    for index in range(keys):
        key = _perf_key(index)
        group = index % PREFIX_GROUPS
        record = ProvenanceRecord(
            key=key,
            checksum=checksum_of(key.encode("utf-8")),
            location=f"ext://{key}",
            creator=f"sensor-{group:02d}",
            organization="org1",
            certificate_fingerprint=f"{index:016x}",
            # Every 16th item is "hot": rich queries select a realistic
            # subset of a group instead of returning the whole bucket.
            metadata={"group": group, "hot": index // PREFIX_GROUPS % 16 == 0},
            timestamp=0.0,
            size_bytes=1024,
        )
        value = record.to_json()
        for peer in deployment.peers:
            peer.world_state.put(key, value, (0, index))
        loaded.append(key)
    loaded.sort()
    return loaded


def _range_bounds(sorted_keys: List[str], query: int, window: int) -> Tuple[str, str]:
    """Deterministic ``(start_key, end_key)`` window for the q-th query.

    Clamps to the key list, so tiny smoke scales (one or two keys) degrade
    to an open-ended range instead of indexing past the end.
    """
    count = len(sorted_keys)
    if count <= window:
        return (sorted_keys[0] if sorted_keys else "", "")
    start_index = (query * 97) % (count - window)
    return sorted_keys[start_index], sorted_keys[start_index + window]


def _measure_range_query(
    keys: int, queries: int, window: int, seed: int
) -> PerfMeasurement:
    deployment = build_desktop_deployment(seed=seed)
    sorted_keys = _preload_world_state(deployment, keys)
    client = deployment.client
    latencies: List[float] = []
    started = time.perf_counter()
    for query in range(queries):
        start_key, end_key = _range_bounds(sorted_keys, query, window)
        result = client.get_by_range(start_key, end_key)
        latencies.append(result.latency_s)
    wall = max(time.perf_counter() - started, 1e-9)
    return PerfMeasurement(
        workload="range-query",
        scale=keys,
        operations=queries,
        wall_s=wall,
        wall_ops_per_s=queries / wall,
        virtual_mean_s=sum(latencies) / len(latencies) if latencies else 0.0,
    )


def _rich_selector(group: int) -> Dict[str, object]:
    """Selector for one prefix group's hot records (scoped by ``_prefix``
    when the chaincode supports it; a full scan with the same match set
    on implementations without the prefix index)."""
    return {
        "_prefix": f"perf/g{group:02d}/",
        "creator": f"sensor-{group:02d}",
        "metadata.hot": True,
    }


def _measure_read_mix(
    keys: int, queries: int, window: int, seed: int
) -> PerfMeasurement:
    """Alternate range and rich queries against one preloaded deployment."""
    deployment = build_desktop_deployment(seed=seed)
    sorted_keys = _preload_world_state(deployment, keys)
    client = deployment.client
    latencies: List[float] = []
    started = time.perf_counter()
    for query in range(queries):
        start_key, end_key = _range_bounds(sorted_keys, query, window)
        result = client.get_by_range(start_key, end_key)
        latencies.append(result.latency_s)
        rich = client.query_records(_rich_selector(query % PREFIX_GROUPS))
        latencies.append(rich.latency_s)
    wall = max(time.perf_counter() - started, 1e-9)
    operations = 2 * queries
    return PerfMeasurement(
        workload="read-mix",
        scale=keys,
        operations=operations,
        wall_s=wall,
        wall_ops_per_s=operations / wall,
        virtual_mean_s=sum(latencies) / len(latencies) if latencies else 0.0,
    )


def _measure_rich_query(keys: int, queries: int, seed: int) -> PerfMeasurement:
    deployment = build_desktop_deployment(seed=seed)
    _preload_world_state(deployment, keys)
    client = deployment.client
    latencies: List[float] = []
    started = time.perf_counter()
    for query in range(queries):
        result = client.query_records(_rich_selector(query % PREFIX_GROUPS))
        latencies.append(result.latency_s)
    wall = max(time.perf_counter() - started, 1e-9)
    return PerfMeasurement(
        workload="rich-query",
        scale=keys,
        operations=queries,
        wall_s=wall,
        wall_ops_per_s=queries / wall,
        virtual_mean_s=sum(latencies) / len(latencies) if latencies else 0.0,
    )


# -------------------------------------------------------------------- entry
def run_perf(
    commit_requests: int = 240,
    keys: int = 10_000,
    queries: int = 60,
    range_window: int = 64,
    seed: int = 42,
    repeats: int = 2,
) -> PerfReport:
    """Run every perf workload at a small and the full scale.

    Each measurement is taken ``repeats`` times and the fastest pass is
    reported — the minimum is the standard noise-robust estimator for
    wall-clock microbenchmarks (scheduling interference only ever adds
    time).  Virtual-time results are identical across passes (the
    simulation is deterministic per seed).
    """
    report = PerfReport()

    def best(measure, *args) -> PerfMeasurement:
        passes = [measure(*args) for _ in range(max(1, repeats))]
        return max(passes, key=lambda m: m.wall_ops_per_s)

    for requests in _scales(commit_requests, 4):
        report.measurements.append(best(_measure_commit_heavy, requests, seed))
    for key_count in _scales(keys, 10):
        report.measurements.append(
            best(_measure_range_query, key_count, queries, range_window, seed)
        )
        report.measurements.append(best(_measure_rich_query, key_count, queries, seed))
        report.measurements.append(
            best(_measure_read_mix, key_count, queries, range_window, seed)
        )
    return report


def _scales(full: int, divisor: int) -> List[int]:
    """A reduced warm-up scale plus the full scale (deduplicated)."""
    small = max(1, full // divisor)
    return [small, full] if small != full else [full]


# ------------------------------------------------------------- persistence
def write_report(report: PerfReport, path: Path) -> Dict[str, object]:
    """Write ``report`` to ``path``, preserving any pre-PR baseline block.

    If the existing file carries a ``baseline_pre_pr`` section (the
    numbers measured on the unoptimized implementation), it is carried
    forward and the speedup factors are recomputed against it.  The
    ``fleet`` and ``query`` sections (owned by ``bench fleet`` and
    ``bench query``) are carried forward untouched as well.
    """
    document: Dict[str, object] = report.to_dict()
    baseline: Optional[Dict[str, object]] = None
    fleet: Optional[Dict[str, object]] = None
    query: Optional[Dict[str, object]] = None
    if path.exists():
        try:
            previous = json.loads(path.read_text())
            baseline = previous.get("baseline_pre_pr")
            fleet = previous.get("fleet")
            query = previous.get("query")
        except (json.JSONDecodeError, OSError):
            baseline = None
            fleet = None
            query = None
    if baseline:
        document["baseline_pre_pr"] = baseline
        document["speedup_vs_pre_pr"] = _speedups(report, baseline)
    if fleet:
        document["fleet"] = fleet
    if query:
        document["query"] = query
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def _speedups(report: PerfReport, baseline: Dict[str, object]) -> Dict[str, float]:
    speedups: Dict[str, float] = {}
    for entry in baseline.get("measurements", []):
        old = PerfMeasurement.from_dict(entry)
        new = report.find(old.workload, old.scale)
        if new is not None and old.wall_ops_per_s > 0:
            speedups[new.label] = round(new.wall_ops_per_s / old.wall_ops_per_s, 2)
    return speedups


def check_regression(
    report: PerfReport,
    baseline_path: Path,
    tolerance: float = 3.0,
) -> List[str]:
    """Compare ``report`` against a committed baseline file.

    Returns a list of human-readable failures for every matching
    (workload, scale) pair whose wall-clock throughput fell more than
    ``tolerance``× below the baseline.  Non-matching scales are skipped so
    reduced CI profiles only gate the pairs they actually measured.
    """
    return check_regression_data(
        report, json.loads(baseline_path.read_text()), tolerance
    )


def check_regression_data(
    report: PerfReport,
    data: Dict[str, object],
    tolerance: float = 3.0,
) -> List[str]:
    """:func:`check_regression` against already-loaded baseline JSON.

    Callers that also *write* a report should load the baseline first and
    gate via this function — if output and baseline name the same file,
    reading after writing would compare the run against itself.
    """
    failures: List[str] = []
    for entry in data.get("measurements", []):
        old = PerfMeasurement.from_dict(entry)
        new = report.find(old.workload, old.scale)
        if new is None:
            continue
        floor = old.wall_ops_per_s / tolerance
        if new.wall_ops_per_s < floor:
            failures.append(
                f"{new.label}: {new.wall_ops_per_s:.1f} wall ops/s is below "
                f"the regression floor {floor:.1f} "
                f"(baseline {old.wall_ops_per_s:.1f}, tolerance {tolerance}x)"
            )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    report = run_perf()
    write_report(report, Path(DEFAULT_OUTPUT))
    print(report.to_table().render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
