"""Command-line entry point: ``python -m repro.bench <experiment>``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.bench import (
    run_baseline_comparison,
    run_batch_ablation,
    run_cache_ablation,
    run_concurrency_ablation,
    run_consensus_ablation,
    run_fairness_comparison,
    run_fastfabric_ablation,
    run_fig1,
    run_fig2,
    run_fig3,
    run_ops_table,
    run_perf,
    run_resource_usage,
    run_sharding_ablation,
)
from repro.bench.chaos import (
    check_chaos_anchors,
    run_chaos,
    write_chaos_entry,
)
from repro.bench.fleet import (
    check_fleet_anchor,
    run_fleet,
    shard_stats_table,
    write_fleet_entry,
)
from repro.bench.perf import PerfRegressionError, check_regression_data, write_report
from repro.bench.query_bench import (
    DEFAULT_MIN_SPEEDUP,
    check_query_gate,
    run_query_bench,
    write_query_entry,
)
from repro.bench.ops_table import stage_table as ops_stage_table
from repro.bench.ops_table import to_table as ops_to_table
from repro.consensus.scheduler import SCHEDULER_NAMES
from repro.middleware.config import PipelineConfig


def _positive_int(value: str) -> int:
    """argparse type: an integer >= 1 (rejects 0/-1 with a clean CLI error)."""
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be at least 1, got {parsed}")
    return parsed


def _pipeline_config(args: argparse.Namespace) -> Optional[PipelineConfig]:
    """Build the declarative pipeline config the CLI flags describe.

    Returns ``None`` when every flag is at its default so experiments keep
    the deployment's stock pipeline (byte-for-byte the unmodified path).
    """
    if not (args.cache or args.retry_attempts > 1 or args.order_batch > 1):
        return None
    return PipelineConfig(
        cache=args.cache,
        retry_attempts=args.retry_attempts,
        order_batch_size=args.order_batch,
    )


def _note_read_only_flags(args: argparse.Namespace, table) -> None:
    """Flag middlewares that cannot affect a write-only StoreData workload."""
    if args.cache or args.retry_attempts > 1:
        table.add_note(
            "--cache/--retry-attempts act on the read path; this workload is "
            "write-only, so they do not change its numbers (see ablation-cache)"
        )


def _run_fig1(args: argparse.Namespace) -> str:
    series = run_fig1(
        requests_per_size=args.requests,
        pipeline=_pipeline_config(args),
        concurrency=args.concurrency,
    )
    table = series.to_table("Fig. 1 — desktop: throughput and response time vs data size")
    _note_read_only_flags(args, table)
    return table.render()


def _run_fig2(args: argparse.Namespace) -> str:
    series = run_fig2(
        requests_per_size=args.requests,
        pipeline=_pipeline_config(args),
        concurrency=args.concurrency,
    )
    table = series.to_table("Fig. 2 — RPi: throughput and response time vs data size")
    _note_read_only_flags(args, table)
    return table.render()


def _run_fig3(args: argparse.Namespace) -> str:
    figure = run_fig3(interval_s=args.interval)
    return figure.to_table().render()


def _run_ops(args: argparse.Namespace) -> str:
    results = run_ops_table(repeats=max(2, args.requests // 10))
    return "\n\n".join(
        [ops_to_table(results).render(), ops_stage_table(results).render()]
    )


def _run_baselines(args: argparse.Namespace) -> str:
    report = run_baseline_comparison(requests=args.requests)
    return report.to_table().render()


def _run_batch(args: argparse.Namespace) -> str:
    return run_batch_ablation(requests=args.requests).to_table().render()


def _run_cache(args: argparse.Namespace) -> str:
    return run_cache_ablation().to_table().render()


def _run_concurrency(args: argparse.Namespace) -> str:
    return run_concurrency_ablation(requests=args.requests).to_table().render()


def _run_consensus(args: argparse.Namespace) -> str:
    return run_consensus_ablation(requests=args.requests).to_table().render()


def _run_fastfabric(args: argparse.Namespace) -> str:
    ablation = run_fastfabric_ablation(requests=args.requests)
    table = ablation.to_table()
    table.add_note(f"throughput speedup from parallel validation: {ablation.speedup:.2f}x")
    return table.render()


def _run_resources(args: argparse.Namespace) -> str:
    reports = run_resource_usage(requests=args.requests)
    return "\n\n".join(report.to_table().render() for report in reports.values())


def _shard_counts(max_shards: int) -> List[int]:
    """1, 2, 4, … doubling up to (and including) ``max_shards``."""
    counts = []
    count = 1
    while count < max_shards:
        counts.append(count)
        count *= 2
    counts.append(max_shards)
    return counts


def _run_sharding(args: argparse.Namespace) -> str:
    # The shard sweep needs enough requests per deployment to reach steady
    # state past the priming and final-block tail; scale the shared
    # --requests knob (default 20 → 240) instead of hiding a second flag.
    requests = max(args.requests, 4) * 12
    ablation = run_sharding_ablation(
        shard_counts=_shard_counts(args.shards),
        requests=requests,
        scheduler=args.scheduler,
    )
    fairness = run_fairness_comparison(
        light_requests=max(6, min(requests // 24, 20)),
    )
    return "\n\n".join([ablation.to_table().render(), fairness.to_table().render()])


def _run_perf(args: argparse.Namespace) -> str:
    import json

    # Load the baseline BEFORE writing the report: with the default
    # --perf-output, baseline and output may be the same file, and reading
    # it back after the write would compare the run against itself.
    baseline_data = None
    if args.perf_baseline:
        baseline = Path(args.perf_baseline)
        try:
            baseline_data = json.loads(baseline.read_text())
        except (OSError, ValueError) as exc:
            # A missing or corrupt baseline must fail the gate cleanly —
            # silently skipping it would let regressions through CI.
            raise PerfRegressionError(
                f"perf baseline {baseline} is unreadable: {exc!r}"
            ) from exc

    report = run_perf(
        commit_requests=args.perf_requests,
        keys=args.perf_keys,
        queries=args.perf_queries,
        repeats=args.perf_repeats,
    )
    output = Path(args.perf_output)
    document = write_report(report, output)
    table = report.to_table()
    table.add_note(f"written to {output}")
    rendered = table.render()
    # Per-shard utilization/stall of the committed fleet runs rides along
    # so lookahead regressions stay visible from the perf entry point too.
    for profile, entry in sorted(document.get("fleet", {}).items()):
        stats = entry.get("shard_stats") or []
        if stats:
            rendered += "\n\n" + shard_stats_table(
                stats, f"committed fleet {profile} — per-shard wall-clock"
            ).render()
    if baseline_data is not None:
        try:
            failures = check_regression_data(
                report, baseline_data, tolerance=args.perf_tolerance
            )
        except (KeyError, TypeError, ValueError) as exc:
            # Structurally invalid baseline rows fail the gate too.
            raise PerfRegressionError(
                f"perf baseline {args.perf_baseline} is unreadable: {exc!r}"
            ) from exc
        if failures:
            raise PerfRegressionError(
                "wall-clock perf regression vs "
                f"{args.perf_baseline}:\n" + "\n".join(f"  - {f}" for f in failures)
            )
        rendered += (
            f"\nperf gate: no regression vs {args.perf_baseline} "
            f"(tolerance {args.perf_tolerance}x)"
        )
    return rendered


def _run_fleet(args: argparse.Namespace) -> str:
    import json

    # Same load-before-write discipline as _run_perf: with the default
    # --perf-output the baseline and the output are the same file.
    baseline_data = None
    if args.perf_baseline:
        baseline = Path(args.perf_baseline)
        try:
            baseline_data = json.loads(baseline.read_text())
        except (OSError, ValueError) as exc:
            raise PerfRegressionError(
                f"fleet baseline {baseline} is unreadable: {exc!r}"
            ) from exc

    report = run_fleet(
        devices=args.fleet_devices,
        shards=args.fleet_shards,
        workers=args.workers,
        duration_s=args.fleet_duration,
    )
    output = Path(args.perf_output)
    write_fleet_entry(report, output)
    table = report.to_table()
    table.add_note(f"written to {output} (fleet/{report.profile})")
    stats = shard_stats_table(
        [s for s in report.to_dict()["shard_stats"]],
        f"fleet {report.profile} — per-shard wall-clock (parallel run)",
    )
    rendered = "\n\n".join([table.render(), stats.render()])
    if baseline_data is not None:
        failures = check_fleet_anchor(report, baseline_data)
        if failures:
            raise PerfRegressionError(
                f"fleet determinism gate vs {args.perf_baseline}:\n"
                + "\n".join(f"  - {f}" for f in failures)
            )
        rendered += (
            f"\nfleet gate: determinism anchor matches {args.perf_baseline} "
            f"(profile {report.profile})"
        )
    return rendered


def _run_chaos(args: argparse.Namespace) -> str:
    import json

    # Same load-before-write discipline as _run_perf: with the default
    # --perf-output the baseline and the output are the same file.
    baseline_data = None
    if args.perf_baseline:
        baseline = Path(args.perf_baseline)
        try:
            baseline_data = json.loads(baseline.read_text())
        except (OSError, ValueError) as exc:
            raise PerfRegressionError(
                f"chaos baseline {baseline} is unreadable: {exc!r}"
            ) from exc

    report = run_chaos(smoke=args.smoke, seed=args.chaos_seed)
    output = Path(args.perf_output)
    write_chaos_entry(report, output)
    table = report.to_table()
    table.add_note(f"written to {output} (chaos section)")
    rendered = table.render()
    if baseline_data is not None:
        failures = check_chaos_anchors(report, baseline_data)
        if failures:
            raise PerfRegressionError(
                f"chaos determinism gate vs {args.perf_baseline}:\n"
                + "\n".join(f"  - {f}" for f in failures)
            )
        rendered += (
            f"\nchaos gate: every scenario anchor matches {args.perf_baseline}"
        )
    return rendered


def _run_query(args: argparse.Namespace) -> str:
    report = run_query_bench(
        key_scales=tuple(args.query_keys),
        queries=args.query_queries,
        commits=args.query_commits,
        repeats=args.query_repeats,
    )
    output = Path(args.perf_output)
    document = write_query_entry(report, output)
    table = report.to_table()
    table.add_note(f"written to {output} (query section)")
    rendered = table.render()
    failures = check_query_gate(document, min_speedup=args.query_min_speedup)
    if failures:
        raise PerfRegressionError(
            "query bench gate:\n" + "\n".join(f"  - {f}" for f in failures)
        )
    rendered += (
        f"\nquery gate: indexed selector meets the "
        f"{args.query_min_speedup}x speedup floor"
    )
    return rendered


EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "fig1": _run_fig1,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "ops": _run_ops,
    "baselines": _run_baselines,
    "ablation-batch": _run_batch,
    "ablation-cache": _run_cache,
    "ablation-concurrency": _run_concurrency,
    "ablation-consensus": _run_consensus,
    "ablation-fastfabric": _run_fastfabric,
    "ablation-sharding": _run_sharding,
    "perf": _run_perf,
    "fleet": _run_fleet,
    "query": _run_query,
    "chaos": _run_chaos,
    "resources": _run_resources,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hyperprov-bench",
        description="Regenerate the paper's figures and tables on the simulated testbeds.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment(s) to run ('all' runs every one)",
    )
    parser.add_argument(
        "--requests", type=_positive_int, default=20,
        help="requests per measurement point (default: 20)",
    )
    parser.add_argument(
        "--concurrency", type=_positive_int, default=None,
        help="in-flight submissions the closed loop keeps outstanding on "
             "fig1/fig2 (default: the runner's 16; ablation-concurrency "
             "sweeps this knob)",
    )
    parser.add_argument(
        "--interval", type=float, default=600.0,
        help="energy measurement interval in virtual seconds (default: 600)",
    )
    pipeline = parser.add_argument_group(
        "pipeline", "middleware configuration applied to fig1/fig2 runs"
    )
    pipeline.add_argument(
        "--cache", action="store_true",
        help="enable the read-cache middleware (commit-event invalidated)",
    )
    pipeline.add_argument(
        "--retry-attempts", type=_positive_int, default=1,
        help="total attempts per read operation via the retry middleware "
             "(default: 1; writes complete asynchronously through handles — "
             "endorsement failures surface as invalidated handles, not "
             "retryable exceptions)",
    )
    pipeline.add_argument(
        "--order-batch", type=_positive_int, default=1,
        help="endorsed envelopes coalesced per orderer submission (default: 1)",
    )
    sharding = parser.add_argument_group(
        "sharding", "multi-channel configuration for ablation-sharding"
    )
    sharding.add_argument(
        "--shards", type=_positive_int, default=4,
        help="highest channel-shard count the sharding ablation sweeps to "
             "(doubling from 1; default: 4)",
    )
    sharding.add_argument(
        "--scheduler", choices=sorted(SCHEDULER_NAMES), default="fifo",
        help="orderer intake policy used for the shard throughput sweep "
             "(the tenant-isolation table always compares fifo vs "
             "fair-share; default: fifo)",
    )
    perf = parser.add_argument_group(
        "perf", "wall-clock measurement configuration for the perf experiment"
    )
    perf.add_argument(
        "--perf-requests", type=_positive_int, default=240,
        help="metadata-post requests in the commit-heavy workload's full "
             "scale (default: 240; a 1/4 scale always runs first)",
    )
    perf.add_argument(
        "--perf-keys", type=_positive_int, default=10_000,
        help="preloaded world-state keys for the range/rich-query workloads "
             "(default: 10000; a 1/10 scale always runs first)",
    )
    perf.add_argument(
        "--perf-queries", type=_positive_int, default=60,
        help="queries issued per read workload and scale (default: 60)",
    )
    perf.add_argument(
        "--perf-repeats", type=_positive_int, default=2,
        help="measurement passes per workload; the fastest is reported "
             "(min-over-repeats damps scheduling noise; default: 2)",
    )
    perf.add_argument(
        "--perf-output", default="BENCH_PERF.json",
        help="where to write the perf report (default: BENCH_PERF.json)",
    )
    perf.add_argument(
        "--perf-baseline", default=None,
        help="committed baseline JSON to gate against; the run fails when "
             "wall-clock throughput regresses more than --perf-tolerance "
             "below it (default: no gate)",
    )
    perf.add_argument(
        "--perf-tolerance", type=float, default=3.0,
        help="allowed slowdown factor vs the baseline before the perf gate "
             "fails (default: 3.0)",
    )
    fleet = parser.add_argument_group(
        "fleet", "parallel fleet configuration for the fleet experiment "
                 "(shares --perf-output/--perf-baseline; the baseline gate "
                 "checks the determinism anchor, not throughput)"
    )
    fleet.add_argument(
        "--fleet-devices", type=_positive_int, default=10_000,
        help="IoT devices posting metadata in the fleet run (default: 10000)",
    )
    fleet.add_argument(
        "--fleet-shards", type=_positive_int, default=4,
        help="channel shards (= fleet sites) the devices spread over "
             "(default: 4)",
    )
    fleet.add_argument(
        "--workers", type=_positive_int, default=4,
        help="worker processes for the parallel executor, clamped to the "
             "shard count; 1 runs the windowed protocol inline "
             "(default: 4)",
    )
    fleet.add_argument(
        "--fleet-duration", type=float, default=200.0,
        help="virtual seconds of fleet traffic per run (default: 200)",
    )
    query = parser.add_argument_group(
        "query", "read-side query bench configuration for the query "
                 "experiment (shares --perf-output; the gate checks the "
                 "indexed-vs-scan speedup, not absolute throughput)"
    )
    query.add_argument(
        "--query-keys", type=_positive_int, nargs="+", default=[1_000, 10_000],
        help="preloaded key scales the indexed-vs-scan comparison runs at "
             "(default: 1000 10000; the gate applies at the largest)",
    )
    query.add_argument(
        "--query-queries", type=_positive_int, default=30,
        help="selector queries per mode and scale (default: 30)",
    )
    query.add_argument(
        "--query-commits", type=_positive_int, default=32,
        help="commits pushed through the continuous-query delivery "
             "workload (default: 32)",
    )
    query.add_argument(
        "--query-repeats", type=_positive_int, default=2,
        help="measurement passes per mode; the fastest is reported "
             "(default: 2)",
    )
    query.add_argument(
        "--query-min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP,
        help="indexed-vs-scan wall-clock speedup the largest key scale "
             f"must reach before the gate fails (default: {DEFAULT_MIN_SPEEDUP})",
    )
    chaos = parser.add_argument_group(
        "chaos", "fault-injection scenario configuration for the chaos "
                 "experiment (shares --perf-output/--perf-baseline; the "
                 "gate checks per-scenario determinism anchors)"
    )
    chaos.add_argument(
        "--smoke", action="store_true",
        help="run each chaos scenario once instead of the double-pass "
             "determinism check (the CI shape — determinism is then gated "
             "against the committed anchors via --perf-baseline)",
    )
    chaos.add_argument(
        "--chaos-seed", type=_positive_int, default=42,
        help="seed for the chaos deployments and fault plans (default: 42; "
             "changing it changes every anchor, so the baseline gate only "
             "applies at the committed seed)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the selected experiments and print their tables."""
    parser = build_parser()
    args = parser.parse_args(argv)
    selected = sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    outputs = []
    for name in selected:
        try:
            outputs.append(EXPERIMENTS[name](args))
        except PerfRegressionError as exc:
            print("\n\n".join(outputs + [str(exc)]))
            return 1
    print("\n\n".join(outputs))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
