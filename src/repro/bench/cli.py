"""Command-line entry point: ``python -m repro.bench <experiment>``."""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.bench import (
    run_baseline_comparison,
    run_batch_ablation,
    run_consensus_ablation,
    run_fastfabric_ablation,
    run_fig1,
    run_fig2,
    run_fig3,
    run_ops_table,
    run_resource_usage,
)
from repro.bench.ops_table import to_table as ops_to_table


def _run_fig1(args: argparse.Namespace) -> str:
    series = run_fig1(requests_per_size=args.requests)
    table = series.to_table("Fig. 1 — desktop: throughput and response time vs data size")
    return table.render()


def _run_fig2(args: argparse.Namespace) -> str:
    series = run_fig2(requests_per_size=args.requests)
    table = series.to_table("Fig. 2 — RPi: throughput and response time vs data size")
    return table.render()


def _run_fig3(args: argparse.Namespace) -> str:
    figure = run_fig3(interval_s=args.interval)
    return figure.to_table().render()


def _run_ops(args: argparse.Namespace) -> str:
    results = run_ops_table(repeats=max(2, args.requests // 10))
    return ops_to_table(results).render()


def _run_baselines(args: argparse.Namespace) -> str:
    report = run_baseline_comparison(requests=args.requests)
    return report.to_table().render()


def _run_batch(args: argparse.Namespace) -> str:
    return run_batch_ablation(requests=args.requests).to_table().render()


def _run_consensus(args: argparse.Namespace) -> str:
    return run_consensus_ablation(requests=args.requests).to_table().render()


def _run_fastfabric(args: argparse.Namespace) -> str:
    ablation = run_fastfabric_ablation(requests=args.requests)
    table = ablation.to_table()
    table.add_note(f"throughput speedup from parallel validation: {ablation.speedup:.2f}x")
    return table.render()


def _run_resources(args: argparse.Namespace) -> str:
    reports = run_resource_usage(requests=args.requests)
    return "\n\n".join(report.to_table().render() for report in reports.values())


EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "fig1": _run_fig1,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "ops": _run_ops,
    "baselines": _run_baselines,
    "ablation-batch": _run_batch,
    "ablation-consensus": _run_consensus,
    "ablation-fastfabric": _run_fastfabric,
    "resources": _run_resources,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hyperprov-bench",
        description="Regenerate the paper's figures and tables on the simulated testbeds.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment(s) to run ('all' runs every one)",
    )
    parser.add_argument(
        "--requests", type=int, default=20,
        help="requests per measurement point (default: 20)",
    )
    parser.add_argument(
        "--interval", type=float, default=600.0,
        help="energy measurement interval in virtual seconds (default: 600)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the selected experiments and print their tables."""
    parser = build_parser()
    args = parser.parse_args(argv)
    selected = sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    outputs = []
    for name in selected:
        outputs.append(EXPERIMENTS[name](args))
    print("\n\n".join(outputs))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
