"""Read-cache ablation: repeated ``get`` latency with the cache on vs off.

IoT provenance workloads are read-heavy once data is recorded (dashboards
re-resolving the same keys, lineage walks touching hot ancestors), so the
pipeline's read-cache middleware should collapse repeated reads to a local
lookup.  This ablation measures exactly that: store a working set, then
issue ``rounds`` passes of ``get`` over it with two declaratively
configured pipelines — ``PipelineConfig(cache=False)`` (the paper's
behaviour) and ``PipelineConfig(cache=True)`` — and reports mean latency
per read plus hit statistics.  A commit against one key between rounds
verifies invalidation keeps the cache coherent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.api.protocol import StoreRequest
from repro.bench.reporting import ResultTable, format_seconds
from repro.core.topology import build_desktop_deployment
from repro.middleware.config import PipelineConfig
from repro.workloads.payloads import PayloadGenerator


@dataclass
class CacheVariant:
    """Measured read latencies for one pipeline configuration."""

    label: str
    config: PipelineConfig
    latencies_s: List[float] = field(default_factory=list)
    cache_hits: float = 0.0
    cache_misses: float = 0.0

    @property
    def mean_latency_s(self) -> float:
        if not self.latencies_s:
            return float("nan")
        return sum(self.latencies_s) / len(self.latencies_s)


@dataclass
class CacheAblation:
    """Cache-off vs cache-on comparison on the same stored working set."""

    variants: List[CacheVariant] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Mean repeated-get latency ratio, cache-off over cache-on."""
        by_label: Dict[str, CacheVariant] = {v.label: v for v in self.variants}
        off = by_label.get("cache-off")
        on = by_label.get("cache-on")
        if off is None or on is None or not on.mean_latency_s:
            return 1.0
        return off.mean_latency_s / on.mean_latency_s

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Read-cache ablation — repeated get() over a hot working set",
            columns=["pipeline", "reads", "mean get", "cache hits", "cache misses"],
        )
        for variant in self.variants:
            table.add_row(
                variant.label,
                len(variant.latencies_s),
                format_seconds(variant.mean_latency_s),
                int(variant.cache_hits),
                int(variant.cache_misses),
            )
        table.add_note(f"repeated-read speedup from the cache: {self.speedup:.1f}x")
        return table


def run_cache_ablation(
    keys: int = 8,
    rounds: int = 5,
    payload_bytes: int = 1024,
    seed: int = 42,
) -> CacheAblation:
    """Measure repeated-``get`` latency with the read cache off and on."""
    ablation = CacheAblation()
    variants = (
        CacheVariant(label="cache-off", config=PipelineConfig(cache=False)),
        CacheVariant(label="cache-on", config=PipelineConfig(cache=True)),
    )
    for variant in variants:
        deployment = build_desktop_deployment(seed=seed)
        client = deployment.client
        client.configure_pipeline(variant.config)
        store = client.as_store()
        generator = PayloadGenerator(size_bytes=payload_bytes, seed=seed, prefix="cache")
        items = [generator.next_item() for _ in range(keys)]
        for item in items:
            store.submit(StoreRequest(key=item.key, data=item.data))
            deployment.drain()
        for round_index in range(rounds):
            for item in items:
                variant.latencies_s.append(store.get(item.key).latency_s)
            if round_index == rounds - 2 and items:
                # Re-record one key between the last two rounds so the
                # commit-event invalidation path is part of the measurement.
                store.submit(StoreRequest(key=items[0].key, data=items[0].data + b"!"))
                deployment.drain()
        hits = client.metrics.get_counter("cache.hits")
        misses = client.metrics.get_counter("cache.misses")
        variant.cache_hits = hits.value if hits else 0.0
        variant.cache_misses = misses.value if misses else 0.0
        ablation.variants.append(variant)
    return ablation


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_cache_ablation().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
