"""Ablation: sharded multi-channel routing and tenant-aware fair sharing.

Two questions, one experiment:

1. **Does the ordering path scale horizontally?**  The write workload
   (metadata-only provenance posts, isolating the order/commit path from
   client-side storage cost) runs against deployments hosting 1 → N
   channel shards, each shard ordered by its own machine.  The orderer's
   per-envelope intake cost is modelled explicitly (the
   ``intake_interval_s`` parameter of :func:`run_sharding_ablation`),
   reproducing the single-orderer bottleneck the paper's testbeds have —
   so adding channels adds ordering capacity and throughput should rise
   until peers saturate.

2. **Does fair-share scheduling protect light tenants?**  A heavy tenant
   submits ``skew``× the light tenant's load as a burst into one shard's
   backlogged orderer.  Under FIFO intake the light tenant's p95 commit
   latency degrades by the full backlog; under the weighted
   deficit-round-robin ``fair-share`` scheduler the light tenant keeps a
   bounded factor of its solo latency.  The table reports both against
   the light tenant's solo run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.reporting import ResultTable, format_seconds
from repro.bench.runner import RunConfig, RunResult, StoreDataRunner
from repro.consensus.batching import BatchConfig
from repro.core.topology import build_desktop_deployment
from repro.api.service import HyperProvService
from repro.middleware.config import PipelineConfig
from repro.workloads.scenarios import SkewedTenantWorkload, TenantLoadResult

DEFAULT_SHARD_COUNTS: Sequence[int] = (1, 2, 4)
#: Short batch timeout so a shard's final partial block does not park the
#: makespan on the default 2 s timeout (steady-state measurement).
BENCH_BATCH_TIMEOUT_S = 0.25


@dataclass
class ShardingAblation:
    """Results of the shard-count throughput sweep."""

    scheduler: str = "fifo"
    intake_interval_s: float = 0.04
    shard_counts: List[int] = field(default_factory=list)
    results: List[RunResult] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Throughput at the highest shard count relative to one shard."""
        if len(self.results) < 2 or self.results[0].throughput_tps <= 0:
            return 1.0
        return self.results[-1].throughput_tps / self.results[0].throughput_tps

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title=(
                "Ablation — channel shards vs write throughput "
                f"(metadata posts, {self.scheduler} intake, "
                f"{self.intake_interval_s * 1000:.0f} ms/envelope orderer cost)"
            ),
            columns=["shards", "throughput (tx/s)", "mean response",
                     "p50 response", "p95 response", "committed"],
        )
        for count, result in zip(self.shard_counts, self.results):
            table.add_row(
                count,
                round(result.throughput_tps, 2),
                format_seconds(result.mean_response_s),
                format_seconds(result.p50_response_s),
                format_seconds(result.p95_response_s),
                result.committed,
            )
        table.add_note(
            f"throughput scaling from 1 → "
            f"{self.shard_counts[-1] if self.shard_counts else '?'} shards: "
            f"{self.speedup:.2f}x (each shard's channel is ordered by its own machine; "
            f"peers host every channel, so peer CPU eventually saturates)"
        )
        return table


@dataclass
class FairnessComparison:
    """Light-tenant latency under 10x skew: FIFO vs fair-share intake."""

    skew: int
    solo: Optional[TenantLoadResult] = None
    by_scheduler: Dict[str, Dict[str, TenantLoadResult]] = field(default_factory=dict)

    def slowdown(self, scheduler: str) -> float:
        """Light tenant's p95 under load relative to its solo p95."""
        if self.solo is None or not self.solo.response_times_s:
            return float("nan")
        loaded = self.by_scheduler.get(scheduler, {}).get("light")
        if loaded is None or not loaded.response_times_s:
            return float("nan")
        return loaded.p95_response_s / self.solo.p95_response_s

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title=(
                f"Ablation — tenant isolation under {self.skew}x skew "
                "(burst-loaded orderer, light tenant vs heavy tenant)"
            ),
            columns=["scheduler", "light p95", "light slowdown vs solo",
                     "heavy p95", "light committed"],
        )
        if self.solo is not None:
            table.add_row(
                "(light solo)",
                format_seconds(self.solo.p95_response_s),
                "1.00x",
                "-",
                self.solo.committed,
            )
        for scheduler, tenants in self.by_scheduler.items():
            light = tenants.get("light")
            heavy = tenants.get("heavy")
            table.add_row(
                scheduler,
                format_seconds(light.p95_response_s) if light else "-",
                f"{self.slowdown(scheduler):.2f}x",
                format_seconds(heavy.p95_response_s) if heavy else "-",
                light.committed if light else 0,
            )
        table.add_note(
            "fair-share = weighted deficit round robin over per-tenant intake "
            "queues; FIFO serves the heavy tenant's backlog first"
        )
        return table


def run_sharding_ablation(
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    requests: int = 240,
    concurrency: int = 64,
    scheduler: str = "fifo",
    intake_interval_s: float = 0.04,
    seed: int = 42,
) -> ShardingAblation:
    """Sweep channel-shard counts under the metadata-post write workload."""
    ablation = ShardingAblation(scheduler=scheduler, intake_interval_s=intake_interval_s)
    for count in shard_counts:
        deployment = build_desktop_deployment(
            seed=seed,
            shards=count,
            scheduler=scheduler,
            orderer_intake_interval_s=intake_interval_s,
            batch_config=BatchConfig(batch_timeout_s=BENCH_BATCH_TIMEOUT_S),
        )
        runner = StoreDataRunner(deployment)
        result = runner.run(
            RunConfig(
                data_size_bytes=256,
                request_count=requests,
                concurrency=min(concurrency, requests),
                metadata_only=True,
                seed=seed,
                pipeline=PipelineConfig(shards=count, scheduler=scheduler),
            )
        )
        ablation.shard_counts.append(count)
        ablation.results.append(result)
    return ablation


def run_fairness_comparison(
    light_requests: int = 10,
    skew: int = 10,
    intake_interval_s: float = 0.01,
    seed: int = 42,
) -> FairnessComparison:
    """Compare FIFO and fair-share intake under heavy-tenant skew.

    The heavy tenant submits its whole load as a near-burst (1 ms apart)
    while the light tenant trickles one request every 50 ms, so a backlog
    forms at the orderer and the intake policy decides who waits.
    """
    comparison = FairnessComparison(skew=skew)

    def build(scheduler: str) -> HyperProvService:
        deployment = build_desktop_deployment(
            seed=seed,
            scheduler=scheduler,
            orderer_intake_interval_s=intake_interval_s,
            batch_config=BatchConfig(batch_timeout_s=BENCH_BATCH_TIMEOUT_S),
        )
        return HyperProvService(deployment)

    def workload(service: HyperProvService) -> SkewedTenantWorkload:
        return SkewedTenantWorkload(
            service,
            light_requests=light_requests,
            skew=skew,
            light_interval_s=0.05,
            heavy_interval_s=0.001,
        )

    comparison.solo = workload(build("fifo")).run(only_light=True)["light"]
    for scheduler in ("fifo", "fair-share"):
        comparison.by_scheduler[scheduler] = workload(build(scheduler)).run()
    return comparison


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_sharding_ablation().to_table().render())
    print()
    print(run_fairness_comparison().to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
