"""The StoreData workload runner shared by Fig. 1 / Fig. 2 / ablations.

The paper's custom benchmarking program issues ``StoreData`` requests in a
closed loop and reports the achieved throughput and the response time
observed by the client.  The runner reproduces that through the unified
:class:`~repro.api.ProvenanceSession` API: ``concurrency`` logical request
slots are kept outstanding as in-flight futures (``session.submit``);
whenever a submission's future completes on the client's anchor peer, the
slot immediately issues the next request.  Throughput and response times
fall out of the completed handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.api.protocol import SubmitHandle
from repro.api.service import HyperProvService
from repro.common.hashing import checksum_of
from repro.common.metrics import percentile
from repro.core.topology import HyperProvDeployment
from repro.middleware.config import PipelineConfig
from repro.workloads.payloads import DataItem, PayloadGenerator


@dataclass
class RunConfig:
    """Parameters of one StoreData measurement run."""

    data_size_bytes: int
    request_count: int = 30
    #: Number of outstanding requests the closed loop keeps in flight.  Kept
    #: above the orderer's default MaxMessageCount (10) so blocks are cut by
    #: count rather than by the batch timeout under load.
    concurrency: int = 16
    key_prefix: str = "bench"
    seed: int = 42
    #: Declarative middleware configuration applied to the deployment's
    #: client (and the fabric's endorsement batcher) before the run; ``None``
    #: keeps whatever pipeline the client already has.
    pipeline: Optional[PipelineConfig] = None
    #: Run the workload inside a tenant namespace (multi-tenant benches).
    tenant: Optional[str] = None
    #: Per-tenant admission cap forwarded to the session (0 = uncapped).
    max_in_flight: int = 0
    #: Submit metadata-only provenance posts (checksum + location) instead
    #: of storing payloads off-chain — isolates the ordering/commit path
    #: from the client-side storage cost (the sharding ablation's mode).
    metadata_only: bool = False


@dataclass
class RunResult:
    """Measured outcome of one run."""

    config: RunConfig
    submitted: int
    committed: int
    failed: int
    makespan_s: float
    throughput_tps: float
    response_times_s: List[float] = field(default_factory=list)
    chain_latencies_s: List[float] = field(default_factory=list)
    storage_times_s: List[float] = field(default_factory=list)

    @property
    def mean_response_s(self) -> float:
        if not self.response_times_s:
            return float("nan")
        return sum(self.response_times_s) / len(self.response_times_s)

    def response_percentile_s(self, pct: float) -> float:
        """Response-time percentile via the shared linear-interpolated helper."""
        if not self.response_times_s:
            return float("nan")
        return percentile(self.response_times_s, pct)

    @property
    def p50_response_s(self) -> float:
        return self.response_percentile_s(50)

    @property
    def p95_response_s(self) -> float:
        return self.response_percentile_s(95)

    @property
    def p99_response_s(self) -> float:
        return self.response_percentile_s(99)

    @property
    def mean_storage_s(self) -> float:
        if not self.storage_times_s:
            return 0.0
        return sum(self.storage_times_s) / len(self.storage_times_s)

    @property
    def mean_chain_s(self) -> float:
        if not self.chain_latencies_s:
            return 0.0
        return sum(self.chain_latencies_s) / len(self.chain_latencies_s)

    def summary(self) -> Dict[str, float]:
        return {
            "size_bytes": float(self.config.data_size_bytes),
            "throughput_tps": self.throughput_tps,
            "mean_response_s": self.mean_response_s,
            "p50_response_s": self.p50_response_s,
            "p95_response_s": self.p95_response_s,
            "p99_response_s": self.p99_response_s,
            "mean_storage_s": self.mean_storage_s,
            "mean_chain_s": self.mean_chain_s,
            "committed": float(self.committed),
        }


class StoreDataRunner:
    """Drives a closed-loop StoreData workload against a deployment."""

    def __init__(self, deployment: HyperProvDeployment) -> None:
        self.deployment = deployment
        self.service = HyperProvService(deployment)

    # ------------------------------------------------------------ estimation
    def estimate_item_interval(self, size_bytes: int) -> float:
        """Estimate the client's unavoidable per-item time for a payload size.

        Checksum + SSH encryption on the client CPU, transfer to the storage
        node at the bottleneck bandwidth, fixed protocol and SDK overheads.
        Used to stagger the initial closed-loop submissions.
        """
        client = self.deployment.client_device
        profile = client.profile
        storage_profile = self.deployment.storage_backend.storage_device.profile
        bandwidth = min(profile.nic.bandwidth_bps, storage_profile.nic.bandwidth_bps)
        hashing = size_bytes / profile.hash_rate_bytes_per_s * 1.5
        transfer = size_bytes * 8.0 / bandwidth
        fixed = (
            self.deployment.storage_backend.config.protocol_overhead_s
            + self.deployment.fabric.config.client_overhead_s
            + profile.sign_time_s
            + profile.chaincode_invoke_overhead_s * 0.5
        )
        return hashing + transfer + fixed

    # ------------------------------------------------------------------- run
    def run(self, config: RunConfig) -> RunResult:
        """Execute one closed-loop measurement run."""
        deployment = self.deployment
        engine = deployment.engine
        session = self.service.session(
            tenant=config.tenant,
            pipeline=config.pipeline,
            max_in_flight=config.max_in_flight,
        )
        generator = PayloadGenerator(
            size_bytes=config.data_size_bytes,
            seed=config.seed,
            prefix=f"{config.key_prefix}/{config.data_size_bytes}",
        )
        items: Iterator[DataItem] = generator.items(config.request_count)
        # An admission cap below the loop's concurrency would reject the
        # excess slots outright; clamp so the closed loop runs at the cap.
        concurrency = config.concurrency
        if config.max_in_flight > 0:
            concurrency = min(concurrency, config.max_in_flight)
        stagger = self.estimate_item_interval(config.data_size_bytes) / max(1, concurrency)

        start_time = engine.now
        state = {"issued": 0}
        submissions: List[float] = []
        handles: List[SubmitHandle] = []
        storage_times: List[float] = []

        def issue_next() -> None:
            """Submit the next item at the current virtual time (one slot)."""
            if state["issued"] >= config.request_count:
                return
            state["issued"] += 1
            submitted_at = engine.now
            if config.metadata_only:
                # Metadata-only posts never touch payload bytes; take just
                # the next key so the driver does not generate (and then
                # discard) the payload on the measured wall-clock path.
                key = generator.next_key()
                handle = session.submit(
                    key,
                    checksum=checksum_of(key.encode("utf-8")),
                    location=f"ext://{key}",
                    size_bytes=config.data_size_bytes,
                    metadata={"bench": True, "size": config.data_size_bytes},
                )
            else:
                item = next(items)
                handle = session.submit(
                    item.key,
                    item.data,
                    metadata={"bench": True, "size": config.data_size_bytes},
                )
            submissions.append(submitted_at)
            handles.append(handle)
            if handle.storage_receipt is not None:
                storage_times.append(handle.storage_receipt.duration_s)
            handle.add_done_callback(
                lambda done: engine.schedule_at(
                    max(engine.now, done.committed_at),
                    issue_next,
                    label="bench:next",
                )
            )

        # Prime the loop: stagger the initial slots slightly so they do not
        # collide on the client CPU at t=0.
        for slot in range(min(concurrency, config.request_count)):
            engine.schedule_at(start_time + slot * stagger, issue_next, label="bench:prime")

        session.drain()
        # The last partial block may still be pending on the batch timeout.
        session.drain()

        committed = [h for h in handles if h.done and h.ok]
        failed = [h for h in handles if h.done and not h.ok]
        response_times = [
            handle.committed_at - submitted
            for handle, submitted in zip(handles, submissions)
            if handle.done and handle.ok
        ]
        chain_latencies = [h.handle.latency_s for h in committed if h.handle is not None]

        if committed:
            last_commit = max(h.committed_at for h in committed)
            makespan = max(1e-9, last_commit - start_time)
            throughput = len(committed) / makespan
        else:
            makespan = 0.0
            throughput = 0.0

        return RunResult(
            config=config,
            submitted=len(handles),
            committed=len(committed),
            failed=len(failed),
            makespan_s=makespan,
            throughput_tps=throughput,
            response_times_s=response_times,
            chain_latencies_s=chain_latencies,
            storage_times_s=storage_times,
        )
