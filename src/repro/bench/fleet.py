"""Fleet-scale wall-clock benchmark (``bench fleet``).

Runs the 10k-device metadata-post fleet twice — once on the parallel
executor (multi-process shard workers, batched commit delivery) and once
on the sequential engine — and reports the wall-clock speedup plus the
virtual-time **determinism anchor**: a digest over every site's commit log
(tx ids, submit/commit times, validation codes, block numbers).  The two
runs must produce byte-identical anchors; a mismatch fails the benchmark
because it means the parallel decomposition changed simulated behaviour.

The parallel run goes **first**: the measurement forks its workers from a
clean heap.  Running it after the sequential pass would fork children
into a heap holding millions of dead simulation objects, and their GC
passes would fault all of those pages copy-on-write — a measurement
artifact, not a property of either executor.

Results land in the ``fleet`` section of ``BENCH_PERF.json`` keyed by
``{devices}x{shards}`` profile, next to the ``perf`` measurements.  The
CI perf-smoke job re-runs a reduced profile and gates on the committed
anchor, which catches any change that silently moves virtual time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.perf import PerfRegressionError
from repro.bench.reporting import ResultTable, format_seconds
from repro.consensus.batching import BatchConfig
from repro.simulation.parallel import (
    FleetRunResult,
    ShardRunStats,
    run_fleet_parallel,
    run_fleet_sequential,
)
from repro.workloads.fleet import FleetSpec

#: Mean metadata posts per device per second (one post every 200 s).
FLEET_RATE_PER_DEVICE_S = 0.005

#: Virtual seconds of fleet traffic per run.
FLEET_DURATION_S = 200.0

#: Fraction of devices cycling offline (churn) during the run.
FLEET_CHURN_FRACTION = 0.1

#: One partition window: the last replica of every site drops out of the
#: mesh mid-run and heals, exercising delivery retries deterministically.
FLEET_PARTITION_WINDOWS = ((60.0, 90.0),)


def fleet_spec(
    devices: int = 10_000,
    shards: int = 4,
    duration_s: float = FLEET_DURATION_S,
    seed: int = 42,
) -> FleetSpec:
    """The canonical bench fleet: churn + partition on, per-post blocks.

    ``max_message_count=1`` cuts one block per post — the latency-oriented
    configuration matching the paper's unbatched per-transaction transfer
    semantics, and the regime where commit-delivery cost dominates the
    sequential baseline.
    """
    return FleetSpec(
        devices=devices,
        shards=shards,
        rate_per_device_s=FLEET_RATE_PER_DEVICE_S,
        duration_s=duration_s,
        seed=seed,
        churn_fraction=FLEET_CHURN_FRACTION,
        partition_windows=FLEET_PARTITION_WINDOWS,
        batch_config=BatchConfig(max_message_count=1),
    )


def profile_name(spec: FleetSpec) -> str:
    """The ``fleet`` section key one configuration's results live under."""
    return f"{spec.devices}x{spec.shards}"


@dataclass
class FleetBenchReport:
    """Parallel-vs-sequential comparison of one fleet configuration."""

    spec: FleetSpec
    parallel: FleetRunResult
    sequential: FleetRunResult

    @property
    def profile(self) -> str:
        return profile_name(self.spec)

    @property
    def anchor(self) -> str:
        return self.sequential.anchor

    @property
    def speedup(self) -> float:
        if self.parallel.wall_s <= 0:
            return 0.0
        return self.sequential.wall_s / self.parallel.wall_s

    def verify_determinism(self) -> None:
        """Fail loudly when the executors disagree on virtual time."""
        if self.parallel.anchor != self.sequential.anchor:
            raise PerfRegressionError(
                "fleet determinism anchor mismatch: parallel "
                f"{self.parallel.anchor} != sequential {self.sequential.anchor} "
                f"(profile {self.profile})"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "devices": self.spec.devices,
            "shards": self.spec.shards,
            "workers": self.parallel.workers,
            "duration_s": self.spec.duration_s,
            "seed": self.spec.seed,
            "window_s": round(self.parallel.window_s, 6),
            "submitted": self.sequential.submitted,
            "committed": self.sequential.committed,
            "pending": self.sequential.pending,
            "sequential_wall_s": round(self.sequential.wall_s, 4),
            "parallel_wall_s": round(self.parallel.wall_s, 4),
            "speedup": round(self.speedup, 2),
            "anchor": self.anchor,
            "shard_stats": [_stats_dict(s) for s in self.parallel.shard_stats],
        }

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title=(
                f"bench fleet — {self.spec.devices} devices × "
                f"{self.spec.shards} shards metadata-post "
                f"({self.parallel.workers} workers)"
            ),
            columns=[
                "executor", "workers", "wall time", "committed",
                "wall tx/s", "anchor",
            ],
        )
        for result in (self.sequential, self.parallel):
            table.add_row(
                result.mode,
                result.workers,
                format_seconds(result.wall_s),
                result.committed,
                round(result.throughput_wall(), 1),
                result.anchor[:16],
            )
        table.add_note(
            f"parallel speedup: {self.speedup:.2f}x; virtual-time commit "
            "logs byte-identical (anchors match)"
        )
        return table


def _stats_dict(stats: ShardRunStats) -> Dict[str, object]:
    return {
        "worker": stats.worker,
        "sites": list(stats.sites),
        "windows": stats.windows,
        "events": stats.events,
        "busy_wall_s": round(stats.busy_wall_s, 4),
        "barrier_stall_s": round(stats.barrier_stall_s, 4),
        "utilization": round(stats.utilization, 4),
    }


def shard_stats_table(
    stats: List[Dict[str, object]], title: str
) -> ResultTable:
    """Per-worker utilization/stall table (satellite of every fleet run).

    Accepts the serialized form so the CLI can render both a fresh run and
    the committed ``BENCH_PERF.json`` section with one code path.
    """
    table = ResultTable(
        title=title,
        columns=[
            "worker", "sites", "windows", "events",
            "busy wall", "barrier stall", "utilization",
        ],
    )
    for entry in stats:
        table.add_row(
            entry["worker"],
            ",".join(str(s) for s in entry["sites"]),
            entry["windows"],
            entry["events"],
            format_seconds(float(entry["busy_wall_s"])),
            format_seconds(float(entry["barrier_stall_s"])),
            f"{float(entry['utilization']) * 100:.1f}%",
        )
    table.add_note(
        "barrier stall is wall time parked waiting for the coordinator; "
        "rising stall at unchanged busy time means the lookahead window "
        "regressed"
    )
    return table


def run_fleet(
    devices: int = 10_000,
    shards: int = 4,
    workers: int = 4,
    duration_s: float = FLEET_DURATION_S,
    seed: int = 42,
    window_s: Optional[float] = None,
) -> FleetBenchReport:
    """Measure parallel then sequential and verify the determinism anchor."""
    spec = fleet_spec(devices=devices, shards=shards, duration_s=duration_s, seed=seed)
    spec.validate()
    # Parallel first: fork from a clean heap (see module docstring).
    parallel = run_fleet_parallel(spec, workers=workers, window_s=window_s)
    sequential = run_fleet_sequential(spec)
    report = FleetBenchReport(spec=spec, parallel=parallel, sequential=sequential)
    report.verify_determinism()
    return report


# ------------------------------------------------------------- persistence
def write_fleet_entry(report: FleetBenchReport, path: Path) -> Dict[str, object]:
    """Merge this profile's results into ``path`` without touching the rest.

    ``BENCH_PERF.json`` is shared with ``bench perf``: the perf writer owns
    ``measurements``/``baseline_pre_pr`` and carries ``fleet`` forward;
    this writer only replaces its own ``fleet[profile]`` entry.
    """
    document: Dict[str, object] = {}
    if path.exists():
        try:
            document = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            document = {}
    fleet = document.setdefault("fleet", {})
    fleet[report.profile] = report.to_dict()
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def check_fleet_anchor(
    report: FleetBenchReport, baseline_data: Dict[str, object]
) -> List[str]:
    """Gate a fresh run against the committed determinism anchor.

    Returns failure strings when the baseline holds this profile and its
    anchor differs; an absent profile is skipped (reduced CI scales only
    gate what they measured, mirroring :func:`check_regression_data`).
    """
    fleet = baseline_data.get("fleet")
    if not isinstance(fleet, dict):
        return []
    entry = fleet.get(report.profile)
    if not isinstance(entry, dict) or "anchor" not in entry:
        return []
    committed = str(entry["anchor"])
    if report.anchor != committed:
        return [
            f"fleet {report.profile}: determinism anchor {report.anchor} "
            f"does not match the committed baseline {committed} — virtual "
            "time moved"
        ]
    return []
