"""Ablation: FastFabric-style parallel block validation.

The paper cites FastFabric (Gorenflo et al., ICBC '19), which raises HLF
throughput by, among other things, parallelizing endorsement-signature
validation on the committing peers.  This ablation toggles the equivalent
option in the peer model on the Raspberry Pi deployment — where validation
is the most expensive relative to the hardware — and reports the gain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.bench.reporting import ResultTable, format_seconds
from repro.bench.runner import RunConfig, RunResult, StoreDataRunner
from repro.core.topology import build_rpi_deployment


@dataclass
class FastFabricAblation:
    """Results with sequential vs parallel validation."""

    results: Dict[str, RunResult] = field(default_factory=dict)

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Ablation — FastFabric-style parallel validation (RPi setup, 1 KiB payloads)",
            columns=["validation", "throughput (tx/s)", "mean response", "p95 response"],
        )
        for mode, result in self.results.items():
            table.add_row(
                mode,
                round(result.throughput_tps, 2),
                format_seconds(result.mean_response_s),
                format_seconds(result.p95_response_s),
            )
        return table

    @property
    def speedup(self) -> float:
        """Throughput of parallel validation relative to sequential."""
        sequential = self.results["sequential"].throughput_tps
        parallel = self.results["parallel"].throughput_tps
        return parallel / sequential if sequential else float("nan")


def run_fastfabric_ablation(
    payload_bytes: int = 1024,
    requests: int = 40,
    seed: int = 42,
) -> FastFabricAblation:
    """Measure the StoreData workload with and without parallel validation."""
    ablation = FastFabricAblation()
    for label, parallel in (("sequential", False), ("parallel", True)):
        deployment = build_rpi_deployment(parallel_validation=parallel, seed=seed)
        runner = StoreDataRunner(deployment)
        result = runner.run(
            RunConfig(data_size_bytes=payload_bytes, request_count=requests, seed=seed)
        )
        ablation.results[label] = result
    return ablation


def main() -> None:  # pragma: no cover - CLI convenience
    ablation = run_fastfabric_ablation()
    table = ablation.to_table()
    table.add_note(f"throughput speedup from parallel validation: {ablation.speedup:.2f}x")
    print(table.render())


if __name__ == "__main__":  # pragma: no cover
    main()
