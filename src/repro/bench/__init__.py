"""Benchmark harness.

One module per figure/table of the paper plus ablations:

===============  ==========================================================
Module           Reproduces
===============  ==========================================================
``fig1_throughput``  Fig. 1 — throughput & response time vs data size (desktop)
``fig2_rpi``         Fig. 2 — throughput & response time vs data size (RPi)
``fig3_energy``      Fig. 3 — RPi power over 10-minute intervals by load level
``ops_table``        Per-operator latency table (technical-report style)
``baseline_compare`` HyperProv vs ProvChain-PoW vs centralized DB
``ablation_batch``   Orderer batch-size sweep
``ablation_consensus``  Solo vs Raft ordering
``ablation_cache``   Read-cache middleware on/off (repeated-get latency)
``ablation_concurrency``  In-flight submission depth sweep (futures API)
``ablation_sharding``  Channel shards vs throughput + tenant fair-sharing
``perf``             Wall-clock simulated-tx/s of the hot paths (BENCH_PERF.json)
``fleet``            Parallel vs sequential fleet executor (speedup + anchor)
``query``            Indexed vs scan selector throughput + continuous delivery
``chaos``            Deterministic fault-injection scenarios with invariants
===============  ==========================================================

Run ``python -m repro.bench <experiment>`` or use the pytest-benchmark
suites in ``benchmarks/``.
"""

from repro.bench.runner import StoreDataRunner, RunConfig, RunResult
from repro.bench.reporting import ResultTable, format_si, format_seconds
from repro.bench.fig1_throughput import run_fig1
from repro.bench.fig2_rpi import run_fig2
from repro.bench.fig3_energy import run_fig3
from repro.bench.ops_table import run_ops_table
from repro.bench.baseline_compare import run_baseline_comparison
from repro.bench.ablation_batch import run_batch_ablation
from repro.bench.ablation_cache import run_cache_ablation
from repro.bench.ablation_concurrency import run_concurrency_ablation
from repro.bench.ablation_consensus import run_consensus_ablation
from repro.bench.ablation_fastfabric import run_fastfabric_ablation
from repro.bench.ablation_sharding import (
    run_fairness_comparison,
    run_sharding_ablation,
)
from repro.bench.perf import run_perf
from repro.bench.chaos import run_chaos
from repro.bench.fleet import run_fleet
from repro.bench.query_bench import run_query_bench
from repro.bench.resource_usage import run_resource_usage

__all__ = [
    "StoreDataRunner",
    "RunConfig",
    "RunResult",
    "ResultTable",
    "format_si",
    "format_seconds",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_ops_table",
    "run_baseline_comparison",
    "run_batch_ablation",
    "run_cache_ablation",
    "run_concurrency_ablation",
    "run_consensus_ablation",
    "run_fastfabric_ablation",
    "run_sharding_ablation",
    "run_fairness_comparison",
    "run_perf",
    "run_chaos",
    "run_fleet",
    "run_query_bench",
    "run_resource_usage",
]
