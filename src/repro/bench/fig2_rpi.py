"""Fig. 2 — throughput and response times vs data size on the RPi setup.

Same sweep as Fig. 1 on the Raspberry Pi 3B+ deployment.  The paper notes
"similar trend ... though greater variation, however absolute performance
for RPi is lower than desktop machines as expected owing to the limited
hardware capacity" — the bench asserts exactly that shape.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.fig1_throughput import DEFAULT_SIZES, FigureSeries
from repro.bench.runner import RunConfig, StoreDataRunner
from repro.consensus.batching import BatchConfig
from repro.core.topology import build_rpi_deployment
from repro.middleware.config import PipelineConfig

#: The RPi sweep uses the same sizes; large items simply take longer.
RPI_SIZES: Sequence[int] = DEFAULT_SIZES


def run_fig2(
    sizes: Sequence[int] = RPI_SIZES,
    requests_per_size: int = 20,
    batch_config: Optional[BatchConfig] = None,
    seed: int = 42,
    pipeline: Optional[PipelineConfig] = None,
    concurrency: Optional[int] = None,
) -> FigureSeries:
    """Reproduce Fig. 2 on the simulated Raspberry Pi testbed."""
    series = FigureSeries(setup="rpi")
    for size in sizes:
        deployment = build_rpi_deployment(batch_config=batch_config, seed=seed)
        runner = StoreDataRunner(deployment)
        config = RunConfig(
            data_size_bytes=size,
            request_count=requests_per_size,
            seed=seed,
            pipeline=pipeline,
        )
        if concurrency is not None:
            config.concurrency = concurrency
        series.results.append(runner.run(config))
    return series


def main() -> None:  # pragma: no cover - CLI convenience
    series = run_fig2()
    table = series.to_table("Fig. 2 — RPi: throughput and response time vs data size")
    table.add_note("shape check: same trend as Fig. 1 at lower absolute performance")
    print(table.render())


if __name__ == "__main__":  # pragma: no cover
    main()
