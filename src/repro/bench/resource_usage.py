"""Resource-consumption report: per-node CPU utilization and traffic.

The paper's abstract promises an evaluation of "performance, throughput,
resource consumption, and energy efficiency".  Fig. 3 covers energy; this
experiment covers the resource side: it drives the StoreData workload on
both setups and reports, for every node (peers, orderer, storage, client
host), the CPU utilization, disk utilization and bytes put on the wire
during the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.bench.reporting import ResultTable, format_bytes
from repro.bench.runner import RunConfig, StoreDataRunner
from repro.core.topology import (
    HyperProvDeployment,
    build_desktop_deployment,
    build_rpi_deployment,
)


@dataclass
class NodeUsage:
    """Utilization of one node over the measurement window."""

    node: str
    role: str
    cpu_utilization: float
    disk_utilization: float
    bytes_sent: int
    #: Total CPU core-seconds consumed during the window (utilization × cores × window).
    cpu_core_seconds: float = 0.0


@dataclass
class ResourceUsageReport:
    """Per-node usage for one setup."""

    setup: str
    throughput_tps: float
    window_s: float
    nodes: List[NodeUsage] = field(default_factory=list)

    def node_usage(self, node: str) -> NodeUsage:
        for usage in self.nodes:
            if usage.node == node:
                return usage
        raise KeyError(node)

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title=f"Resource consumption — {self.setup} setup "
                  f"({self.throughput_tps:.1f} tx/s sustained)",
            columns=["node", "role", "cpu util", "disk util", "bytes sent"],
        )
        for usage in self.nodes:
            table.add_row(
                usage.node,
                usage.role,
                f"{usage.cpu_utilization * 100:.1f}%",
                f"{usage.disk_utilization * 100:.1f}%",
                format_bytes(usage.bytes_sent),
            )
        return table


def _role_of(deployment: HyperProvDeployment, node: str) -> str:
    peer_names = {peer.name for peer in deployment.peers}
    client_host = deployment.fabric.client_context("hyperprov-client").host_node
    if node in peer_names:
        return "peer+client" if node == client_host else "peer"
    if node == deployment.fabric.orderer_node:
        return "orderer"
    if node == deployment.storage_backend.config.storage_node:
        return "storage"
    return "client"


def _measure(deployment: HyperProvDeployment, payload_bytes: int, requests: int,
             seed: int) -> ResourceUsageReport:
    runner = StoreDataRunner(deployment)
    result = runner.run(
        RunConfig(data_size_bytes=payload_bytes, request_count=requests, seed=seed)
    )
    window = (0.0, max(deployment.engine.now, 1e-9))
    report = ResourceUsageReport(
        setup=deployment.spec.name,
        throughput_tps=result.throughput_tps,
        window_s=window[1],
    )
    for node, device in sorted(deployment.devices.items()):
        report.nodes.append(
            NodeUsage(
                node=node,
                role=_role_of(deployment, node),
                cpu_utilization=device.utilization(window, "cpu"),
                disk_utilization=device.utilization(window, "disk"),
                bytes_sent=deployment.network.bytes_sent_by(node),
                cpu_core_seconds=device.busy_time(window=window, component="cpu"),
            )
        )
    return report


def run_resource_usage(
    payload_bytes: int = 256 * 1024,
    requests: int = 40,
    seed: int = 42,
) -> Dict[str, ResourceUsageReport]:
    """Measure per-node resource usage on both setups."""
    return {
        "desktop": _measure(build_desktop_deployment(seed=seed), payload_bytes, requests, seed),
        "rpi": _measure(build_rpi_deployment(seed=seed), payload_bytes, requests, seed),
    }


def main() -> None:  # pragma: no cover - CLI convenience
    reports = run_resource_usage()
    print(reports["desktop"].to_table().render())
    print()
    print(reports["rpi"].to_table().render())


if __name__ == "__main__":  # pragma: no cover
    main()
