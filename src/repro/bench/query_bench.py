"""Wall-clock query benchmarks (``bench query``).

Two workloads for the read-side query subsystem:

``selector (indexed vs scan)``
    The same multi-field selector (``creator`` + ``metadata.hot``, no
    prefix scope) against a preloaded world state, once without secondary
    indexes (the planner falls back to a full scan) and once with them
    (posting-list intersection).  Virtual-time cost is identical by
    construction — one state operation either way — so the interesting
    number is wall-clock queries per second, and the headline figure is
    the indexed/scan speedup at each key scale.
``continuous delivery``
    A standing continuous query fed by the commit stream while a batch of
    matching writes flows through endorse → order → commit; reports
    deliveries per wall-clock second and checks none were missed.

Results merge into ``BENCH_PERF.json`` under a ``query`` section and the
CI perf-smoke gate asserts the committed speedup floor via
:func:`check_query_gate`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.bench.perf import PerfRegressionError, _preload_world_state
from repro.bench.reporting import ResultTable, format_seconds
from repro.core.topology import build_desktop_deployment

#: The multi-field selector both modes run — equality on two record
#: fields, servable by posting intersection when the index is on.
INDEX_FIELDS = ("creator", "metadata.*")

#: Committed floor for the indexed/scan speedup at the full key scale
#: (the acceptance bar for the secondary-index subsystem).
DEFAULT_MIN_SPEEDUP = 10.0


def _selector(group: int) -> Dict[str, object]:
    return {"creator": f"sensor-{group:02d}", "metadata.hot": True}


@dataclass
class QueryMeasurement:
    """One selector workload pass: one mode at one key scale."""

    mode: str  # "indexed" | "scan"
    keys: int
    queries: int
    wall_s: float
    wall_queries_per_s: float
    #: Planner-reported access path, asserted so the two modes measure
    #: what they claim (``index-intersection`` vs ``scan``).
    access_path: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "keys": self.keys,
            "queries": self.queries,
            "wall_s": round(self.wall_s, 4),
            "wall_queries_per_s": round(self.wall_queries_per_s, 2),
            "access_path": self.access_path,
        }


@dataclass
class ContinuousMeasurement:
    """The continuous-query delivery workload."""

    commits: int
    delivered: int
    wall_s: float
    deliveries_per_s: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "commits": self.commits,
            "delivered": self.delivered,
            "wall_s": round(self.wall_s, 4),
            "deliveries_per_s": round(self.deliveries_per_s, 2),
        }


@dataclass
class QueryBenchReport:
    measurements: List[QueryMeasurement] = field(default_factory=list)
    continuous: Optional[ContinuousMeasurement] = None

    def speedups(self) -> Dict[str, float]:
        """Indexed/scan wall-clock speedup per key scale."""
        by_scale: Dict[int, Dict[str, QueryMeasurement]] = {}
        for measurement in self.measurements:
            by_scale.setdefault(measurement.keys, {})[measurement.mode] = measurement
        factors: Dict[str, float] = {}
        for keys, modes in sorted(by_scale.items()):
            indexed, scan = modes.get("indexed"), modes.get("scan")
            if indexed and scan and scan.wall_queries_per_s > 0:
                factors[str(keys)] = round(
                    indexed.wall_queries_per_s / scan.wall_queries_per_s, 2
                )
        return factors

    def to_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "description": (
                "multi-field selector (creator + metadata.hot, no prefix) via "
                "posting-list intersection vs full scan; same virtual-time "
                "cost, wall-clock only"
            ),
            "measurements": [m.to_dict() for m in self.measurements],
            "speedup_indexed_vs_scan": self.speedups(),
        }
        if self.continuous is not None:
            document["continuous"] = self.continuous.to_dict()
        return document

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="bench query — indexed vs scan selector throughput (wall clock)",
            columns=["mode", "keys", "queries", "wall time", "queries/s", "access path"],
        )
        for m in self.measurements:
            table.add_row(
                m.mode, m.keys, m.queries, format_seconds(m.wall_s),
                round(m.wall_queries_per_s, 1), m.access_path,
            )
        for scale, factor in self.speedups().items():
            table.add_note(f"indexed vs scan speedup at {scale} keys: {factor}x")
        if self.continuous is not None:
            c = self.continuous
            table.add_note(
                f"continuous delivery: {c.delivered}/{c.commits} commits pushed "
                f"in {format_seconds(c.wall_s)} ({c.deliveries_per_s:.1f}/s)"
            )
        return table


# --------------------------------------------------------------- workloads
def _measure_selector_mode(
    mode: str, keys: int, queries: int, seed: int
) -> QueryMeasurement:
    deployment = build_desktop_deployment(seed=seed)
    _preload_world_state(deployment, keys)
    if mode == "indexed":
        deployment.fabric.enable_secondary_indexes(INDEX_FIELDS)
    client = deployment.client
    # Pin the access path outside the timed loop: the comparison is only
    # meaningful if each mode runs the path it claims to measure.
    plan = client.query_records(_selector(0), explain=True).plan
    access_path = plan["access_path"]
    expected = "index-intersection" if mode == "indexed" else "scan"
    if access_path != expected:
        raise PerfRegressionError(
            f"query bench {mode} mode planned {access_path!r}, expected {expected!r}"
        )
    started = time.perf_counter()
    for query in range(queries):
        client.query_records(_selector(query % 16))
    wall = max(time.perf_counter() - started, 1e-9)
    return QueryMeasurement(
        mode=mode,
        keys=keys,
        queries=queries,
        wall_s=wall,
        wall_queries_per_s=queries / wall,
        access_path=access_path,
    )


def _measure_continuous(commits: int, seed: int) -> ContinuousMeasurement:
    from repro.api.protocol import StoreRequest

    deployment = build_desktop_deployment(seed=seed)
    store = deployment.client.as_store()
    delivered: List[Dict[str, object]] = []
    store.subscribe({"metadata.kind": "bench"}, callback=delivered.append)
    started = time.perf_counter()
    for index in range(commits):
        store.submit(
            StoreRequest(
                key=f"cq/{index:04d}",
                data=f"payload-{index}".encode(),
                metadata={"kind": "bench"},
            )
        )
    deployment.drain()
    wall = max(time.perf_counter() - started, 1e-9)
    if len(delivered) != commits:
        raise PerfRegressionError(
            f"continuous query delivered {len(delivered)}/{commits} commits"
        )
    store.close()
    return ContinuousMeasurement(
        commits=commits,
        delivered=len(delivered),
        wall_s=wall,
        deliveries_per_s=len(delivered) / wall,
    )


# ------------------------------------------------------------------- entry
def run_query_bench(
    key_scales: Sequence[int] = (1_000, 10_000),
    queries: int = 30,
    commits: int = 32,
    seed: int = 42,
    repeats: int = 2,
) -> QueryBenchReport:
    """Run the indexed-vs-scan comparison at every scale plus the
    continuous-delivery workload; fastest of ``repeats`` passes wins."""
    report = QueryBenchReport()

    def best(mode: str, keys: int) -> QueryMeasurement:
        passes = [
            _measure_selector_mode(mode, keys, queries, seed)
            for _ in range(max(1, repeats))
        ]
        return max(passes, key=lambda m: m.wall_queries_per_s)

    for keys in key_scales:
        report.measurements.append(best("scan", keys))
        report.measurements.append(best("indexed", keys))
    report.continuous = _measure_continuous(commits, seed)
    return report


# ------------------------------------------------------------- persistence
def write_query_entry(report: QueryBenchReport, path: Path) -> Dict[str, object]:
    """Merge the ``query`` section into ``path``, leaving every other
    section (perf measurements, ``baseline_pre_pr``, ``fleet``) untouched."""
    document: Dict[str, object] = {}
    if path.exists():
        try:
            document = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            document = {}
    document["query"] = report.to_dict()
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def check_query_gate(
    data: Dict[str, object], min_speedup: float = DEFAULT_MIN_SPEEDUP
) -> List[str]:
    """Gate failures for a loaded ``query`` section.

    The indexed/scan speedup at the *largest* measured key scale must meet
    ``min_speedup``, and the continuous workload must have delivered every
    commit.
    """
    failures: List[str] = []
    section = data.get("query") if isinstance(data.get("query"), dict) else data
    speedups = section.get("speedup_indexed_vs_scan", {}) if section else {}
    if not speedups:
        return ["query section has no indexed-vs-scan speedup measurements"]
    largest = max(speedups, key=int)
    factor = float(speedups[largest])
    if factor < min_speedup:
        failures.append(
            f"indexed selector speedup at {largest} keys is {factor}x, "
            f"below the {min_speedup}x floor"
        )
    continuous = section.get("continuous")
    if continuous and continuous.get("delivered") != continuous.get("commits"):
        failures.append(
            f"continuous query delivered {continuous.get('delivered')} of "
            f"{continuous.get('commits')} commits"
        )
    return failures
