"""Channels: the unit of ledger sharing and policy configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.chaincode.lifecycle import ChaincodeRegistry
from repro.chaincode.shim import Chaincode
from repro.common.errors import ConfigurationError
from repro.consensus.batching import BatchConfig
from repro.membership.msp import MSP
from repro.membership.policies import Policy


@dataclass
class Channel:
    """A Fabric channel: name, membership, chaincode registry and batching.

    The paper's deployment uses a single channel joined by all four peers;
    multi-channel deployments are supported by creating several
    :class:`Channel` objects on the same :class:`~repro.fabric.network.FabricNetwork`.
    """

    name: str
    msp: MSP
    batch_config: BatchConfig = field(default_factory=BatchConfig)
    chaincodes: ChaincodeRegistry = field(default_factory=ChaincodeRegistry)
    #: Names of the peers that have joined the channel.
    members: List[str] = field(default_factory=list)

    def join(self, peer_name: str) -> None:
        """Add a peer to the channel (idempotent)."""
        if peer_name not in self.members:
            self.members.append(peer_name)

    def require_member(self, peer_name: str) -> None:
        if peer_name not in self.members:
            raise ConfigurationError(
                f"peer {peer_name!r} has not joined channel {self.name!r}"
            )

    def instantiate_chaincode(
        self,
        chaincode: Chaincode,
        endorsement_policy: Policy,
        version: str = "1.0",
        install_on: Optional[List[str]] = None,
    ) -> None:
        """Instantiate a chaincode on the channel and install it on peers."""
        definition = self.chaincodes.instantiate(
            name=chaincode.name,
            version=version,
            chaincode=chaincode,
            endorsement_policy=endorsement_policy,
        )
        for peer_name in install_on if install_on is not None else self.members:
            self.require_member(peer_name)
            definition.installed_on.add(peer_name)
