"""Proposals, proposal responses and client-visible transaction handles."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.hashing import sha256_hex
from repro.common.serialization import canonical_json
from repro.crypto.certificates import Certificate
from repro.ledger.transaction import Endorsement, ReadWriteSet, TxValidationCode


@dataclass
class Proposal:
    """A chaincode invocation proposal sent to endorsing peers."""

    tx_id: str
    channel: str
    chaincode: str
    function: str
    args: List[str]
    creator: Certificate
    signature: str
    timestamp: float
    #: Approximate wire size of the proposal (args can embed large metadata).
    size_bytes: int = 0
    _signed_bytes: Optional[bytes] = field(
        default=None, init=False, repr=False, compare=False
    )

    #: Fields covered by the client's signature; rebinding one drops the
    #: cached serialization so verification always sees current content.
    _SIGNED_FIELDS = frozenset({"tx_id", "channel", "chaincode", "function", "args"})

    def __setattr__(self, name: str, value: object) -> None:
        # Covers construction too (dataclass __init__ assigns through
        # here): args is frozen to a tuple so in-place mutation cannot
        # bypass the cached signed bytes, and rebinding any signed field
        # drops the cache so verification always sees current content.
        if name in self._SIGNED_FIELDS:
            object.__setattr__(self, "_signed_bytes", None)
            if name == "args":
                value = tuple(value)
        object.__setattr__(self, name, value)

    def digest(self) -> str:
        return sha256_hex(self.signed_bytes())

    def signed_bytes(self) -> bytes:
        """The bytes covered by the client's proposal signature.

        A proposal never changes after the client signs it, yet every
        endorsing peer re-verifies the signature over these bytes —
        serialize once and cache.  Mutating a covered field invalidates
        the cache (see ``__setattr__``), so stale bytes can never satisfy
        verification.
        """
        if self._signed_bytes is None:
            self._signed_bytes = canonical_json(
                {
                    "tx_id": self.tx_id,
                    "channel": self.channel,
                    "chaincode": self.chaincode,
                    "function": self.function,
                    "args": list(self.args),
                }
            )
        return self._signed_bytes


@dataclass
class ProposalResponse:
    """An endorsing peer's response to a proposal."""

    tx_id: str
    peer: str
    status: int
    payload: Optional[str]
    message: str
    rw_set: ReadWriteSet
    endorsement: Optional[Endorsement]
    #: Virtual time at which the response left the peer.
    produced_at: float = 0.0
    #: Chaincode event set during simulation, as ``(name, payload)``.
    chaincode_event: Optional[tuple] = None

    @property
    def is_ok(self) -> bool:
        return self.status == 200 and self.endorsement is not None


@dataclass
class TransactionHandle:
    """Client-side view of a submitted transaction's life cycle.

    Completed by the Fabric network when the client's anchor peer commits
    (or invalidates) the transaction.
    """

    tx_id: str
    submitted_at: float
    function: str
    endorsed_at: float = 0.0
    ordered_at: float = 0.0
    committed_at: float = 0.0
    validation_code: Optional[TxValidationCode] = None
    response_payload: Optional[str] = None
    commit_block: Optional[int] = None
    #: Extra timing information (endorsement per-peer, transfer times, ...).
    timings: Dict[str, float] = field(default_factory=dict)
    _callbacks: List[Callable[["TransactionHandle"], None]] = field(default_factory=list)

    @property
    def is_complete(self) -> bool:
        return self.validation_code is not None

    @property
    def is_valid(self) -> bool:
        return self.validation_code is TxValidationCode.VALID

    @property
    def latency_s(self) -> float:
        """End-to-end latency from submission to commit on the anchor peer."""
        if not self.is_complete:
            return float("nan")
        return self.committed_at - self.submitted_at

    def on_complete(self, callback: Callable[["TransactionHandle"], None]) -> None:
        """Register a callback fired when the transaction completes."""
        if self.is_complete:
            callback(self)
        else:
            self._callbacks.append(callback)

    def complete(
        self,
        committed_at: float,
        validation_code: TxValidationCode,
        block_number: Optional[int] = None,
    ) -> None:
        """Mark the transaction as finished (called by the Fabric network)."""
        self.committed_at = committed_at
        self.validation_code = validation_code
        self.commit_block = block_number
        for callback in self._callbacks:
            callback(self)
        self._callbacks.clear()
