"""FabricNetwork: wires clients, peers and the ordering path into one system.

This is the orchestration layer the HyperProv client library talks to.  It
drives the full execute-order-validate pipeline over the simulated network
and the device models, producing per-transaction
:class:`~repro.fabric.proposal.TransactionHandle` objects with timestamped
phases so the benchmark harness can report throughput and response times.

The network is a true multi-channel host: each :class:`ChannelShard` owns
a channel, an ordering service (with its own block cutter and intake
scheduler), an endorsement batcher, an invoke pipeline, a commit/event
stream and a per-channel ledger on every joined peer.  The paper's
deployment is the single-shard special case — the historical single-channel
surface (``fabric.channel``, ``fabric.orderer``, ``fabric.order_batcher``)
keeps pointing at shard 0 — while sharded deployments route transactions
across shards via the :class:`~repro.middleware.sharding.ShardRouterMiddleware`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import (
    ConfigurationError,
    EndorsementError,
    NetworkError,
    NotFoundError,
)
from repro.common.events import EventBus
from repro.common.ids import DeterministicIdGenerator
from repro.common.metrics import MetricsRegistry
from repro.consensus.base import OrderingService
from repro.consensus.scheduler import make_scheduler
from repro.consensus.solo import SoloOrderingService
from repro.devices.model import DeviceModel
from repro.fabric.channel import Channel
from repro.fabric.gossip import GossipDisseminator
from repro.fabric.peer import CommitResult, Peer
from repro.fabric.proposal import Proposal, ProposalResponse, TransactionHandle
from repro.ledger.block import Block
from repro.ledger.transaction import Transaction, TxValidationCode
from repro.membership.identity import Identity
from repro.middleware.base import TransactionPipeline
from repro.middleware.batching import EndorsementBatcher
from repro.middleware.context import Context, OperationKind
from repro.middleware.stages import (
    AwaitCommitStage,
    BuildProposalStage,
    CollectEndorsementsStage,
    InvokeState,
    SubmitToOrdererStage,
)
from repro.network.fabric import NetworkFabric
from repro.simulation.engine import RunOutcome, SimulationEngine


@dataclass
class FabricNetworkConfig:
    """Tunables for the orchestration layer."""

    #: Use org-leader gossip for block dissemination instead of direct
    #: orderer → every-peer delivery.
    use_gossip: bool = False
    #: Peers a client sends proposals to; ``None`` means every channel member.
    endorsing_peers: Optional[List[str]] = None
    #: Extra fixed client-side latency per request (SDK/GRPC overhead), seconds.
    client_overhead_s: float = 0.002
    #: Endorsed envelopes coalesced into one orderer submission (1 = off,
    #: reproducing the unbatched per-transaction transfer exactly).
    order_batch_size: int = 1
    #: Batched commit delivery: complete handles through a tx-indexed lookup
    #: (O(block txs) instead of a scan over every registered client) and
    #: buffer per-block ``block_delivered``/chaincode-event fan-out until
    #: :meth:`FabricNetwork.flush_commit_events` publishes the whole window
    #: as one ``commit_batch`` callback.  Virtual-time results are identical
    #: to the per-block path — only wall-clock cost and event granularity
    #: change.  This is the delivery mode the parallel shard workers run.
    batch_commit_delivery: bool = False


@dataclass
class _ClientContext:
    """Book-keeping for one registered client application."""

    name: str
    identity: Identity
    device: DeviceModel
    host_node: str
    anchor_peer: str
    pending: Dict[str, TransactionHandle] = field(default_factory=dict)


@dataclass
class ChannelShard:
    """One channel plus the ordering/commit machinery dedicated to it."""

    index: int
    channel: Channel
    orderer: OrderingService
    orderer_node: str
    orderer_device: Optional[DeviceModel]
    #: Per-shard commit/event stream (``block_delivered``, chaincode events).
    events: EventBus
    batcher: Optional[EndorsementBatcher] = None
    pipeline: Optional[TransactionPipeline] = None
    #: Per-channel peer replicas (same node names across shards — one peer
    #: process hosting one ledger per joined channel, as in Fabric).
    peers: Dict[str, Peer] = field(default_factory=dict)
    #: Every block this shard's ordering service produced, in order.  Used
    #: to bring peers that missed deliveries (partitions) back up to date.
    ordered_blocks: List[Block] = field(default_factory=list)
    #: Shard-private transaction-id namespace.  ``None`` uses the network's
    #: global ``tx-N`` counter; fleet shards get their own namespace so a
    #: shard mints the same ids whether it runs alone in a worker process
    #: or next to its siblings on one engine (tx-id length feeds proposal
    #: ``size_bytes``, so ids must match for virtual times to match).
    tx_ids: Optional[DeterministicIdGenerator] = None


class FabricNetwork:
    """A complete simulated Fabric deployment hosting one or more channels."""

    def __init__(
        self,
        engine: SimulationEngine,
        network: NetworkFabric,
        channel: Channel,
        orderer: Optional[OrderingService] = None,
        orderer_node: str = "orderer",
        orderer_device: Optional[DeviceModel] = None,
        config: Optional[FabricNetworkConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.engine = engine
        self.network = network
        self.config = config or FabricNetworkConfig()
        self.metrics = metrics or MetricsRegistry("fabric")
        #: Aggregate event bus carrying every shard's commit events (the
        #: single-channel surface); each shard also has its own bus.
        self.events = EventBus()
        self.orderer_node = orderer_node
        self.orderer_device = orderer_device
        self.gossip = GossipDisseminator(network)
        self._clients: Dict[str, _ClientContext] = {}
        self._tx_ids = DeterministicIdGenerator("tx")
        self._shards: List[ChannelShard] = []
        #: tx-id → owning client context, maintained only under
        #: ``batch_commit_delivery`` so block commits complete handles with
        #: an O(block txs) lookup instead of scanning every registered
        #: client (the dominant wall-clock cost at fleet scale).
        self._pending_index: Dict[str, _ClientContext] = {}
        #: Per-shard commit notifications buffered until the next
        #: :meth:`flush_commit_events` (barrier-window boundary).
        self._commit_buffers: Dict[int, List[Dict]] = {}
        #: Per-tenant fair-share weights the deployment was built with;
        #: ``set_scheduler`` falls back to these so a policy swap through
        #: a PipelineConfig does not silently reset custom weights.
        self.default_scheduler_weights: Optional[Dict[str, float]] = None
        #: Peer processes currently crashed (fault injection): they endorse
        #: nothing, serve no queries and miss block deliveries until
        #: :meth:`restart_peer` brings them back and re-syncs their ledgers.
        self._offline_peers: Set[str] = set()
        self.add_channel(
            channel,
            orderer=orderer,
            orderer_node=orderer_node,
            orderer_device=orderer_device,
        )

    # ------------------------------------------------------------- sharding
    def add_channel(
        self,
        channel: Channel,
        orderer: Optional[OrderingService] = None,
        orderer_node: Optional[str] = None,
        orderer_device: Optional[DeviceModel] = None,
    ) -> int:
        """Host an additional channel; returns its shard index.

        Each shard gets its own ordering service (block cutter + intake
        scheduler), endorsement batcher, invoke pipeline and event stream,
        so shards order and commit independently of each other.
        """
        index = len(self._shards)
        node = orderer_node or (
            self.orderer_node if index == 0 else f"{self.orderer_node}-{index}"
        )
        if node not in self.network.nodes:
            self.network.register_node(node)
        service = orderer or SoloOrderingService(
            name=node, engine=self.engine, batch_config=channel.batch_config
        )
        shard = ChannelShard(
            index=index,
            channel=channel,
            orderer=service,
            orderer_node=node,
            orderer_device=orderer_device,
            events=EventBus(),
        )
        service.register_consumer(
            lambda block, shard_index=index: self._on_block_ordered(shard_index, block)
        )
        batcher = EndorsementBatcher(
            batch_size=self.config.order_batch_size, metrics=self.metrics
        )
        batcher.bind(self, shard)
        shard.batcher = batcher
        #: The client→endorse→order→commit path as discrete pipeline stages.
        shard.pipeline = TransactionPipeline(
            [
                BuildProposalStage(self),
                CollectEndorsementsStage(self),
                batcher,
                SubmitToOrdererStage(self),
                AwaitCommitStage(self),
            ],
            terminal=lambda ctx: ctx.tags["invoke"].handle,
        )
        self._shards.append(shard)
        return index

    @property
    def shards(self) -> Tuple[ChannelShard, ...]:
        return tuple(self._shards)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard(self, index: int) -> ChannelShard:
        if not 0 <= index < len(self._shards):
            raise NotFoundError(
                f"shard {index} does not exist (network has {len(self._shards)})"
            )
        return self._shards[index]

    def shard_events(self, index: int) -> EventBus:
        """The commit/event stream of one shard."""
        return self.shard(index).events

    # --------------------------------------- single-channel compat surface
    @property
    def channel(self) -> Channel:
        """Shard 0's channel (the historical single-channel surface)."""
        return self._shards[0].channel

    @property
    def orderer(self) -> OrderingService:
        return self._shards[0].orderer

    @property
    def order_batcher(self) -> EndorsementBatcher:
        return self._shards[0].batcher

    @property
    def invoke_pipeline(self) -> TransactionPipeline:
        return self._shards[0].pipeline

    @property
    def _peers(self) -> Dict[str, Peer]:
        """Shard 0's peer registry (compat for single-channel callers)."""
        return self._shards[0].peers

    @property
    def _ordered_blocks(self) -> List[Block]:
        return self._shards[0].ordered_blocks

    # ------------------------------------------------------------- topology
    def add_peer(self, peer: Peer, shard: int = 0) -> None:
        """Register a peer node on one shard (joins the network fabric too)."""
        target = self.shard(shard)
        if peer.name in target.peers:
            raise ConfigurationError(
                f"peer {peer.name!r} is already part of shard {shard}"
            )
        target.peers[peer.name] = peer
        if peer.name not in self.network.nodes:
            self.network.register_node(peer.name, profile=peer.device.profile.nic)

    def add_client(
        self,
        name: str,
        identity: Identity,
        device: DeviceModel,
        host_node: Optional[str] = None,
        anchor_peer: Optional[str] = None,
    ) -> None:
        """Register a client application.

        ``host_node`` is the network node the client runs on (on the RPi
        testbed the client shares the device with a peer).  ``anchor_peer``
        is the peer whose commit completes the client's transactions (the
        same node name on every shard the client submits to).
        """
        if not self._shards[0].peers:
            raise ConfigurationError("add peers before registering clients")
        host = host_node or name
        if host not in self.network.nodes:
            self.network.register_node(host, profile=device.profile.nic)
        anchor = anchor_peer or sorted(self._shards[0].peers)[0]
        if not any(anchor in shard.peers for shard in self._shards):
            raise NotFoundError(f"anchor peer {anchor!r} is not part of the network")
        self._clients[name] = _ClientContext(
            name=name,
            identity=identity,
            device=device,
            host_node=host,
            anchor_peer=anchor,
        )

    def peer(self, name: str, shard: Optional[int] = None) -> Peer:
        if shard is not None:
            peer = self.shard(shard).peers.get(name)
            if peer is None:
                raise NotFoundError(f"unknown peer {name!r} on shard {shard}")
            return peer
        for candidate in self._shards:
            peer = candidate.peers.get(name)
            if peer is not None:
                return peer
        raise NotFoundError(f"unknown peer {name!r}")

    @property
    def peers(self) -> List[Peer]:
        """Shard 0's peers in name order (the single-channel surface)."""
        shard = self._shards[0]
        return [shard.peers[name] for name in sorted(shard.peers)]

    def shard_peers(self, index: int) -> List[Peer]:
        shard = self.shard(index)
        return [shard.peers[name] for name in sorted(shard.peers)]

    def client_context(self, name: str) -> _ClientContext:
        context = self._clients.get(name)
        if context is None:
            raise NotFoundError(f"unknown client {name!r}")
        return context

    def _endorsing_peer_names(self, shard: ChannelShard) -> List[str]:
        if self.config.endorsing_peers is not None:
            return list(self.config.endorsing_peers)
        return sorted(shard.peers)

    # ----------------------------------------------------------- submission
    def submit_transaction(
        self,
        client_name: str,
        chaincode: str,
        function: str,
        args: List[str],
        at_time: Optional[float] = None,
        payload_size_bytes: int = 0,
        shard: int = 0,
        deadline_at: Optional[float] = None,
    ) -> TransactionHandle:
        """Run the full invoke flow for one transaction on one shard.

        The flow starts at ``at_time`` (defaults to "now"); the returned
        handle completes when the client's anchor peer commits the block
        containing the transaction.  Call ``engine.run_until_idle()`` (or
        the harness's drain helper) to make pending batches flush.

        ``deadline_at`` is an absolute virtual-time budget: the submit
        stage refuses to hand the envelope to the orderer past it (the
        handle completes invalid and ``DeadlineExceededError`` is raised).
        """
        context = self.client_context(client_name)
        target = self.shard(shard)
        start = self.engine.now if at_time is None else at_time
        if at_time is not None and at_time > self.engine.now:
            handle = self._make_handle(start, function, target)
            self.engine.schedule_at(
                at_time,
                lambda: self._run_invoke(
                    context, chaincode, function, args, handle, payload_size_bytes,
                    target, deadline_at,
                ),
                label=f"submit:{handle.tx_id}",
            )
            return handle
        handle = self._make_handle(start, function, target)
        self._run_invoke(
            context, chaincode, function, args, handle, payload_size_bytes,
            target, deadline_at,
        )
        return handle

    def _make_handle(
        self,
        submitted_at: float,
        function: str,
        shard: Optional[ChannelShard] = None,
    ) -> TransactionHandle:
        ids = shard.tx_ids if shard is not None and shard.tx_ids is not None else self._tx_ids
        return TransactionHandle(
            tx_id=ids.next(), submitted_at=submitted_at, function=function
        )

    def set_tx_namespace(self, shard: int, namespace: str) -> None:
        """Give one shard its own transaction-id namespace.

        Shard-disjoint deployments (the fleet topology) use this so each
        shard's id sequence is independent of its siblings' submission
        interleaving — a prerequisite for running the shard alone in a
        worker process and still minting byte-identical transactions.
        """
        self.shard(shard).tx_ids = DeterministicIdGenerator(namespace)

    def register_pending(
        self, context: _ClientContext, handle: TransactionHandle
    ) -> None:
        """Record a handle awaiting its anchor-peer commit.

        The await-commit stage routes registrations through here so that,
        under ``batch_commit_delivery``, the network can also maintain the
        tx-id → client index that replaces the per-block client scan.
        """
        context.pending[handle.tx_id] = handle
        if self.config.batch_commit_delivery:
            self._pending_index[handle.tx_id] = context

    def _build_proposal(
        self,
        context: _ClientContext,
        handle: TransactionHandle,
        chaincode: str,
        function: str,
        args: List[str],
        payload_size_bytes: int,
        channel_name: Optional[str] = None,
    ) -> Proposal:
        channel_name = channel_name or self._shards[0].channel.name
        unsigned = Proposal(
            tx_id=handle.tx_id,
            channel=channel_name,
            chaincode=chaincode,
            function=function,
            args=list(args),
            creator=context.identity.certificate,
            signature="",
            timestamp=self.engine.now,
            size_bytes=0,
        )
        # The signed bytes do not cover the signature/size fields, so the
        # proposal can be completed in place (no second construction, and
        # the cached serialization carries over).
        signed = unsigned.signed_bytes()
        unsigned.signature = context.identity.sign(signed)
        unsigned.size_bytes = len(signed) + 512 + payload_size_bytes
        return unsigned

    def _run_invoke(
        self,
        context: _ClientContext,
        chaincode: str,
        function: str,
        args: List[str],
        handle: TransactionHandle,
        payload_size_bytes: int,
        shard: ChannelShard,
        deadline_at: Optional[float] = None,
    ) -> None:
        """Run one invoke through the shard's staged pipeline.

        The phases (build-proposal → collect-endorsements → submit-to-orderer
        → await-commit) live in :mod:`repro.middleware.stages`; this wrapper
        only assembles the pipeline context.
        """
        ctx = Context(
            operation=function,
            kind=OperationKind.WRITE,
            chaincode=chaincode,
            function=function,
            args=list(args),
            client_name=context.name,
            payload_size_bytes=payload_size_bytes,
        )
        if deadline_at is not None:
            ctx.tags["deadline_at"] = deadline_at
        ctx.tags["invoke"] = InvokeState(
            client_context=context,
            handle=handle,
            chaincode=chaincode,
            function=function,
            args=list(args),
            payload_size_bytes=payload_size_bytes,
            shard=shard,
        )
        shard.pipeline.execute(ctx)

    def set_order_batch_size(self, batch_size: int) -> None:
        """Reconfigure every shard's endorsement batcher (flushes queues)."""
        if batch_size < 1:
            raise ConfigurationError("order batch size must be at least 1")
        self.config.order_batch_size = batch_size
        for shard in self._shards:
            shard.batcher.flush()
            shard.batcher.batch_size = batch_size

    def enable_secondary_indexes(self, fields: Tuple[str, ...]) -> None:
        """Attach field-value secondary indexes to every peer's world state.

        One :class:`~repro.query.indexes.FieldValueIndex` per ledger (per
        peer per shard — each channel ledger is independent, exactly like
        CouchDB indexes in Fabric).  Existing committed state is reindexed
        on attach; an empty ``fields`` detaches the indexes again.  The
        rich-query planner picks them up automatically through the world
        state, so this is the only fabric-side switch the ``indexes``
        pipeline knob needs to flip.
        """
        from repro.query.indexes import FieldValueIndex, validate_index_fields

        normalized = validate_index_fields(fields) if fields else ()
        for shard in self._shards:
            for peer in shard.peers.values():
                peer.world_state.attach_secondary_index(
                    FieldValueIndex(normalized) if normalized else None
                )

    def set_scheduler(self, name: str, weights: Optional[Dict[str, float]] = None) -> None:
        """Swap the intake scheduler on every shard's ordering service.

        Each shard gets its own scheduler instance (per-shard tenant
        queues); any queued backlog is carried over into the new
        scheduler.  Without explicit ``weights`` the deployment's
        build-time ``default_scheduler_weights`` apply.
        """
        if weights is None:
            weights = self.default_scheduler_weights
        for shard in self._shards:
            shard.orderer.set_scheduler(make_scheduler(name, weights))

    def set_intake_interval(self, interval_s: float) -> None:
        """Set the per-envelope orderer processing time on every shard."""
        if interval_s < 0:
            raise ConfigurationError("intake interval must be >= 0")
        for shard in self._shards:
            shard.orderer.intake_interval_s = interval_s

    # ------------------------------------------------------ fault injection
    def crash_peer(self, name: str) -> None:
        """Take a peer process offline (all shards hosting it).

        A crashed peer endorses nothing, answers no queries and misses
        every block delivery; its ledgers survive on disk, so
        :meth:`restart_peer` recovers by replaying the missed blocks.
        """
        self.peer(name)  # validates the name
        self._offline_peers.add(name)
        self.metrics.counter("peer_crashes").inc()

    def restart_peer(self, name: str, at_time: Optional[float] = None) -> None:
        """Bring a crashed peer back and re-sync its ledgers (state recovery).

        Every shard hosting the peer replays the blocks it missed, in
        order, completing any client handles whose anchor this peer is.
        """
        self.peer(name)
        self._offline_peers.discard(name)
        now = self.engine.now if at_time is None else at_time
        for shard in self._shards:
            peer = shard.peers.get(name)
            if peer is None:
                continue
            tip = len(shard.ordered_blocks)
            if peer.ledger_height < tip:
                self._catch_up_peer(shard, peer, now, up_to=tip)
        self.metrics.counter("peer_restarts").inc()

    def offline_peers(self) -> Set[str]:
        """Names of peers currently crashed."""
        return set(self._offline_peers)

    def catch_up_peers(self, at_time: Optional[float] = None) -> int:
        """Re-sync every reachable, online peer to its shard's chain tip.

        Called by the fault injector right after a partition heals: without
        it a previously isolated peer only catches up when the *next* block
        happens to be ordered, which may never come — leaving its clients'
        handles pending and the drain reporting a false ``"deadlock"``.
        Returns the number of peer-ledgers that were behind.
        """
        now = self.engine.now if at_time is None else at_time
        behind = 0
        for shard in self._shards:
            tip = len(shard.ordered_blocks)
            for name in sorted(shard.peers):
                if name in self._offline_peers:
                    continue
                if not self.network.partitions.can_communicate(
                    shard.orderer_node, name
                ):
                    continue
                peer = shard.peers[name]
                if peer.ledger_height < tip:
                    self._catch_up_peer(shard, peer, now, up_to=tip)
                    behind += 1
        return behind

    def _collect_endorsements(
        self,
        context: _ClientContext,
        proposal: Proposal,
        sent_at: float,
        shard: ChannelShard,
    ) -> Tuple[List[ProposalResponse], float, int]:
        """Gather endorsements; also reports how many peers were reachable.

        ``reachable`` counts endorsing peers the client could transport to
        (online, same partition) regardless of whether they endorsed — the
        collect stage uses it to distinguish a policy failure (peers
        answered, none valid) from a pure transport failure (nobody was
        even reachable), which surfaces as a retryable network error.
        """
        responses: List[ProposalResponse] = []
        completion_times: List[float] = []
        reachable = 0
        for peer_name in self._endorsing_peer_names(shard):
            peer = shard.peers[peer_name]
            if peer_name in self._offline_peers:
                continue
            if not self.network.partitions.can_communicate(context.host_node, peer_name):
                continue
            reachable += 1
            to_peer = self.network.estimate_transfer_time(
                context.host_node, peer_name, proposal.size_bytes
            )
            try:
                response, ready_at = peer.endorse(proposal, sent_at + to_peer)
            except EndorsementError:
                continue
            back = self.network.estimate_transfer_time(
                peer_name, context.host_node, len((response.payload or "")) + 1024
            )
            responses.append(response)
            completion_times.append(ready_at + back)
        if not completion_times:
            return responses, sent_at, reachable
        return responses, max(completion_times), reachable

    def _submit_to_orderer(
        self,
        transaction: Transaction,
        handle: TransactionHandle,
        shard: ChannelShard,
    ) -> None:
        handle.ordered_at = self.engine.now
        if shard.orderer_device is not None:
            duration = shard.orderer_device.serialization_time(transaction.size_bytes)
            shard.orderer_device.charge_cpu(
                self.engine.now, duration, label=f"order:{transaction.tx_id}"
            )
        shard.orderer.submit(transaction)

    # ------------------------------------------------------------- delivery
    def _on_block_ordered(self, shard_index: int, block: Block) -> None:
        """Deliver a freshly cut block to the shard's peers, complete handles."""
        shard = self._shards[shard_index]
        shard.ordered_blocks.append(block)
        sent_at = self.engine.now
        if shard.orderer_device is not None:
            duration = shard.orderer_device.serialization_time(block.size_bytes)
            _, sent_at = shard.orderer_device.charge_cpu(
                self.engine.now, duration, label=f"cut:{block.number}"
            )

        shard_peers = self.shard_peers(shard_index)
        if self._offline_peers:
            # Crashed peer processes miss the delivery entirely; they
            # re-sync through _catch_up_peer on restart.
            offline = [p for p in shard_peers if p.name in self._offline_peers]
            for _ in offline:
                self.metrics.counter("missed_deliveries").inc()
            shard_peers = [p for p in shard_peers if p.name not in self._offline_peers]
        if self.config.use_gossip:
            arrivals = self.gossip.disseminate(
                shard.orderer_node, shard_peers, block.size_bytes, sent_at
            )
        else:
            arrivals = {}
            for peer in shard_peers:
                if not self.network.partitions.can_communicate(
                    shard.orderer_node, peer.name
                ):
                    continue
                transfer = self.network.estimate_transfer_time(
                    shard.orderer_node, peer.name, block.size_bytes
                )
                arrivals[peer.name] = sent_at + transfer

        commit_results = {}
        for peer in shard_peers:
            if peer.name not in arrivals:
                # Peer is unreachable (partition): it misses this block and
                # will catch up from the orderer's delivery service once the
                # partition heals and the next block reaches it.
                self.metrics.counter("missed_deliveries").inc()
                continue
            self._catch_up_peer(shard, peer, arrivals[peer.name], up_to=block.number)
            commit_results[peer.name] = peer.deliver_block(block, arrivals[peer.name])

        self.metrics.counter("blocks_delivered").inc()
        if self.config.batch_commit_delivery:
            # Handles still complete *now*, at the same virtual times as
            # the per-block path; only the observer fan-out is deferred to
            # the next flush_commit_events() window.
            self._commit_buffers.setdefault(shard_index, []).append(
                {"block": block, "commits": commit_results, "shard": shard_index}
            )
            self._complete_handles_indexed(block, commit_results)
            return
        self._publish(
            shard,
            "block_delivered",
            {"block": block, "commits": commit_results, "shard": shard_index},
        )

        # Fan committed chaincode events out to network-level subscribers
        # (the client library's event listeners hook in here).
        if commit_results:
            reference = next(iter(commit_results.values()))
            for tx, code in zip(block.transactions, reference.validation_codes):
                if code is TxValidationCode.VALID and tx.chaincode_event is not None:
                    event_name, event_payload = tx.chaincode_event
                    self._publish(
                        shard,
                        f"chaincode_event:{event_name}",
                        {
                            "tx_id": tx.tx_id,
                            "name": event_name,
                            "payload": event_payload,
                            "block_number": block.number,
                            "shard": shard_index,
                        },
                    )

        self._complete_handles(block, commit_results)

    def _publish(self, shard: ChannelShard, topic: str, payload: Dict) -> None:
        """Publish on the shard's stream first, then the aggregate bus."""
        shard.events.publish(topic, payload)
        self.events.publish(topic, payload)

    def _catch_up_peer(
        self, shard: ChannelShard, peer: Peer, at_time: float, up_to: int
    ) -> None:
        """Deliver any blocks the peer missed before ``up_to`` (in order).

        Handles anchored on this peer complete as each missed block lands:
        a client whose anchor sat out a partition must see its commits
        resolve on heal, not whenever the next fresh block happens by.
        """
        while peer.ledger_height < up_to:
            missed = shard.ordered_blocks[peer.ledger_height]
            transfer = self.network.estimate_transfer_time(
                shard.orderer_node, peer.name, missed.size_bytes
            )
            result = peer.deliver_block(missed, at_time + transfer)
            self.metrics.counter("catch_up_blocks").inc()
            catch_up_commits = {peer.name: result}
            if self.config.batch_commit_delivery:
                self._complete_handles_indexed(missed, catch_up_commits)
            else:
                self._complete_handles(missed, catch_up_commits)

    def _complete_handles(self, block: Block, commit_results: Dict[str, CommitResult]) -> None:

        # Complete the handles of every client whose anchor peer committed.
        for context in self._clients.values():
            result = commit_results.get(context.anchor_peer)
            if result is None:
                continue
            for position, tx in enumerate(block.transactions):
                handle = context.pending.pop(tx.tx_id, None)
                if handle is None:
                    continue
                self._finish_handle(context, handle, result, position)

    def _complete_handles_indexed(
        self, block: Block, commit_results: Dict[str, CommitResult]
    ) -> None:
        """Complete handles via the tx-id index (batch_commit_delivery mode).

        O(block txs) instead of O(clients × block txs).  Completion draws
        (the anchor→host commit-notify transfer) happen in block-tx order
        per client link, exactly as the scan does for any deployment where
        clients have private host nodes, so virtual times are unchanged.
        """
        for position, tx in enumerate(block.transactions):
            context = self._pending_index.get(tx.tx_id)
            if context is None:
                continue
            result = commit_results.get(context.anchor_peer)
            if result is None:
                # Anchor peer missed this delivery (partition); leave the
                # handle pending, matching the per-block scan's behaviour.
                continue
            del self._pending_index[tx.tx_id]
            handle = context.pending.pop(tx.tx_id)
            self._finish_handle(context, handle, result, position)

    def _finish_handle(
        self,
        context: _ClientContext,
        handle: TransactionHandle,
        result: CommitResult,
        position: int,
    ) -> None:
        code = result.validation_codes[position]
        # Commit event reaches the client over the network.
        notify = self.network.estimate_transfer_time(
            context.anchor_peer, context.host_node, 512
        )
        handle.timings["commit_notify_s"] = notify
        handle.complete(
            result.committed_at + notify,
            code,
            block_number=result.block_number,
        )
        if code is TxValidationCode.VALID:
            self.metrics.counter("txs_committed").inc()
        else:
            self.metrics.counter("txs_invalidated").inc()
        self.metrics.histogram("tx_latency_s").observe(handle.latency_s)

    def flush_commit_events(self, shard: Optional[int] = None) -> int:
        """Publish buffered commit notifications as one batch per stream.

        Under ``batch_commit_delivery`` every ordered block appends one
        entry (block, per-peer commits, shard) to its shard's buffer; this
        drains the buffer of one shard (or all of them) into a single
        ``commit_batch`` publish, plus one ``chaincode_event_batch:{name}``
        publish per distinct event name.  The parallel executor calls this
        at each barrier-window boundary.  Returns the number of block
        entries flushed.
        """
        indices = [shard] if shard is not None else sorted(self._commit_buffers)
        flushed = 0
        for index in indices:
            entries = self._commit_buffers.pop(index, [])
            if not entries:
                continue
            target = self.shard(index)
            events_by_name: Dict[str, List[Dict]] = {}
            for entry in entries:
                commits = entry["commits"]
                if not commits:
                    continue
                block = entry["block"]
                reference = next(iter(commits.values()))
                for tx, code in zip(block.transactions, reference.validation_codes):
                    if code is TxValidationCode.VALID and tx.chaincode_event is not None:
                        event_name, event_payload = tx.chaincode_event
                        events_by_name.setdefault(event_name, []).append(
                            {
                                "tx_id": tx.tx_id,
                                "name": event_name,
                                "payload": event_payload,
                                "block_number": block.number,
                                "shard": index,
                            }
                        )
            target.events.publish_batch("commit_batch", entries)
            self.events.publish_batch("commit_batch", entries)
            for event_name in sorted(events_by_name):
                payloads = events_by_name[event_name]
                topic = f"chaincode_event_batch:{event_name}"
                target.events.publish_batch(topic, payloads)
                self.events.publish_batch(topic, payloads)
            flushed += len(entries)
        return flushed

    @property
    def buffered_commit_events(self) -> int:
        """Block entries awaiting the next :meth:`flush_commit_events`."""
        return sum(len(entries) for entries in self._commit_buffers.values())

    # ---------------------------------------------------------------- query
    def query(
        self,
        client_name: str,
        chaincode: str,
        function: str,
        args: List[str],
        at_time: Optional[float] = None,
        peer_name: Optional[str] = None,
        shard: int = 0,
    ) -> Tuple[ProposalResponse, float]:
        """Evaluate a read-only chaincode function on a single peer.

        Returns the response and the end-to-end latency in seconds.
        """
        context = self.client_context(client_name)
        target = self.shard(shard)
        start = self.engine.now if at_time is None else at_time
        target_name = peer_name or context.anchor_peer
        peer = target.peers.get(target_name)
        if peer is None:
            raise NotFoundError(f"unknown peer {target_name!r} on shard {shard}")
        if target_name in self._offline_peers:
            raise NetworkError(f"peer {target_name!r} is down (crashed)")
        handle = self._make_handle(start, function, target)
        proposal = self._build_proposal(
            context, handle, chaincode, function, args, 0,
            channel_name=target.channel.name,
        )

        prep = context.device.sign_time() + self.config.client_overhead_s
        _, prep_done = context.device.charge_cpu(start, prep, label=f"query:{handle.tx_id}")
        to_peer = self.network.estimate_transfer_time(
            context.host_node, target_name, proposal.size_bytes
        )
        response, ready_at = peer.query(proposal, prep_done + to_peer)
        back = self.network.estimate_transfer_time(
            target_name, context.host_node, len(response.payload or "") + 1024
        )
        latency = (ready_at + back) - start
        self.metrics.histogram("query_latency_s").observe(latency)
        return response, latency

    # -------------------------------------------------------------- helpers
    def flush_and_drain(self, max_events: int = 1_000_000) -> RunOutcome:
        """Force pending batches out and run the simulation until idle.

        Commit callbacks may submit new transactions (closed-loop
        benchmarks), which re-queue envelopes in the endorsement batchers —
        so keep alternating flush/run rounds until every shard's batcher
        and orderer are empty and the engine stays idle.

        Returns a :class:`~repro.simulation.engine.RunOutcome`: stop reason
        ``"idle"`` when every registered handle resolved, ``"deadlock"``
        when the engine has nothing left to do but handles are still
        in flight — a partition that never healed, a crashed anchor peer,
        or a stalled orderer holding its backlog.  Chaos scenarios assert
        on this instead of hanging.
        """
        executed = int(self.engine.run_until_idle(max_events=max_events))
        while True:
            flushed = sum(shard.batcher.flush() for shard in self._shards)
            if flushed:
                executed += int(self.engine.run_until_idle(max_events=max_events))
                continue
            for shard in self._shards:
                shard.orderer.flush()
            executed += int(self.engine.run_until_idle(max_events=max_events))
            if not any(shard.batcher.queued for shard in self._shards):
                break
        if self.config.batch_commit_delivery:
            self.flush_commit_events()
        reason = "deadlock" if self.in_flight() > 0 else "idle"
        return RunOutcome(executed, reason)

    def ledger_heights(self) -> Dict[str, int]:
        """Per-peer block height summed across every hosted channel.

        With a single shard this is exactly the per-peer chain height (and
        should agree across peers once drained); with several shards it is
        the peer's total committed blocks over all its channel ledgers.
        """
        heights: Dict[str, int] = {}
        for shard in self._shards:
            for name, peer in shard.peers.items():
                heights[name] = heights.get(name, 0) + peer.ledger_height
        return heights

    def shard_ledger_heights(self, index: int) -> Dict[str, int]:
        """Block height of every peer on one shard."""
        return {
            name: peer.ledger_height for name, peer in self.shard(index).peers.items()
        }

    def in_flight(self, client_name: Optional[str] = None) -> int:
        """Handles awaiting their anchor-peer commit (optionally per client).

        Counts transactions that reached the await-commit stage on any
        shard; envelopes still queued in an endorsement batcher or
        scheduled for a future virtual time are not yet registered here
        (the session facade's ``in_flight`` tracks the full
        submission-to-commit window).
        """
        if client_name is not None:
            return len(self.client_context(client_name).pending)
        return sum(len(context.pending) for context in self._clients.values())
