"""FabricNetwork: wires clients, peers and the orderer into one system.

This is the orchestration layer the HyperProv client library talks to.  It
drives the full execute-order-validate pipeline over the simulated network
and the device models, producing per-transaction
:class:`~repro.fabric.proposal.TransactionHandle` objects with timestamped
phases so the benchmark harness can report throughput and response times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import (
    ConfigurationError,
    EndorsementError,
    NotFoundError,
)
from repro.common.events import EventBus
from repro.common.ids import DeterministicIdGenerator
from repro.common.metrics import MetricsRegistry
from repro.consensus.base import OrderingService
from repro.consensus.solo import SoloOrderingService
from repro.devices.model import DeviceModel
from repro.fabric.channel import Channel
from repro.fabric.gossip import GossipDisseminator
from repro.fabric.peer import CommitResult, Peer
from repro.fabric.proposal import Proposal, ProposalResponse, TransactionHandle
from repro.ledger.block import Block
from repro.ledger.transaction import Transaction, TxValidationCode
from repro.membership.identity import Identity
from repro.middleware.base import TransactionPipeline
from repro.middleware.batching import EndorsementBatcher
from repro.middleware.context import Context, OperationKind
from repro.middleware.stages import (
    AwaitCommitStage,
    BuildProposalStage,
    CollectEndorsementsStage,
    InvokeState,
    SubmitToOrdererStage,
)
from repro.network.fabric import NetworkFabric
from repro.simulation.engine import SimulationEngine


@dataclass
class FabricNetworkConfig:
    """Tunables for the orchestration layer."""

    #: Use org-leader gossip for block dissemination instead of direct
    #: orderer → every-peer delivery.
    use_gossip: bool = False
    #: Peers a client sends proposals to; ``None`` means every channel member.
    endorsing_peers: Optional[List[str]] = None
    #: Extra fixed client-side latency per request (SDK/GRPC overhead), seconds.
    client_overhead_s: float = 0.002
    #: Endorsed envelopes coalesced into one orderer submission (1 = off,
    #: reproducing the unbatched per-transaction transfer exactly).
    order_batch_size: int = 1


@dataclass
class _ClientContext:
    """Book-keeping for one registered client application."""

    name: str
    identity: Identity
    device: DeviceModel
    host_node: str
    anchor_peer: str
    pending: Dict[str, TransactionHandle] = field(default_factory=dict)


class FabricNetwork:
    """A complete simulated Fabric deployment on one channel."""

    def __init__(
        self,
        engine: SimulationEngine,
        network: NetworkFabric,
        channel: Channel,
        orderer: Optional[OrderingService] = None,
        orderer_node: str = "orderer",
        orderer_device: Optional[DeviceModel] = None,
        config: Optional[FabricNetworkConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.engine = engine
        self.network = network
        self.channel = channel
        self.config = config or FabricNetworkConfig()
        self.metrics = metrics or MetricsRegistry("fabric")
        self.events = EventBus()
        self.orderer_node = orderer_node
        self.orderer_device = orderer_device
        self.orderer = orderer or SoloOrderingService(
            name=orderer_node, engine=engine, batch_config=channel.batch_config
        )
        self.orderer.register_consumer(self._on_block_ordered)
        self.gossip = GossipDisseminator(network)
        self._peers: Dict[str, Peer] = {}
        self._clients: Dict[str, _ClientContext] = {}
        self._tx_ids = DeterministicIdGenerator("tx")
        #: Every block the ordering service has produced, in order.  Used to
        #: bring peers that missed deliveries (partitions) back up to date.
        self._ordered_blocks: List[Block] = []
        if orderer_node not in self.network.nodes:
            self.network.register_node(orderer_node)
        #: The client→endorse→order→commit path as discrete pipeline stages.
        self.order_batcher = EndorsementBatcher(
            batch_size=self.config.order_batch_size, metrics=self.metrics
        )
        self.order_batcher.bind(self)
        self.invoke_pipeline = TransactionPipeline(
            [
                BuildProposalStage(self),
                CollectEndorsementsStage(self),
                self.order_batcher,
                SubmitToOrdererStage(self),
                AwaitCommitStage(self),
            ],
            terminal=lambda ctx: ctx.tags["invoke"].handle,
        )

    # ------------------------------------------------------------- topology
    def add_peer(self, peer: Peer) -> None:
        """Register a peer node (joins it to the network fabric too)."""
        if peer.name in self._peers:
            raise ConfigurationError(f"peer {peer.name!r} is already part of the network")
        self._peers[peer.name] = peer
        if peer.name not in self.network.nodes:
            self.network.register_node(peer.name, profile=peer.device.profile.nic)

    def add_client(
        self,
        name: str,
        identity: Identity,
        device: DeviceModel,
        host_node: Optional[str] = None,
        anchor_peer: Optional[str] = None,
    ) -> None:
        """Register a client application.

        ``host_node`` is the network node the client runs on (on the RPi
        testbed the client shares the device with a peer).  ``anchor_peer``
        is the peer whose commit completes the client's transactions.
        """
        if not self._peers:
            raise ConfigurationError("add peers before registering clients")
        host = host_node or name
        if host not in self.network.nodes:
            self.network.register_node(host, profile=device.profile.nic)
        anchor = anchor_peer or sorted(self._peers)[0]
        if anchor not in self._peers:
            raise NotFoundError(f"anchor peer {anchor!r} is not part of the network")
        self._clients[name] = _ClientContext(
            name=name,
            identity=identity,
            device=device,
            host_node=host,
            anchor_peer=anchor,
        )

    def peer(self, name: str) -> Peer:
        peer = self._peers.get(name)
        if peer is None:
            raise NotFoundError(f"unknown peer {name!r}")
        return peer

    @property
    def peers(self) -> List[Peer]:
        return [self._peers[name] for name in sorted(self._peers)]

    def client_context(self, name: str) -> _ClientContext:
        context = self._clients.get(name)
        if context is None:
            raise NotFoundError(f"unknown client {name!r}")
        return context

    def _endorsing_peer_names(self) -> List[str]:
        if self.config.endorsing_peers is not None:
            return list(self.config.endorsing_peers)
        return sorted(self._peers)

    # ----------------------------------------------------------- submission
    def submit_transaction(
        self,
        client_name: str,
        chaincode: str,
        function: str,
        args: List[str],
        at_time: Optional[float] = None,
        payload_size_bytes: int = 0,
    ) -> TransactionHandle:
        """Run the full invoke flow for one transaction.

        The flow starts at ``at_time`` (defaults to "now"); the returned
        handle completes when the client's anchor peer commits the block
        containing the transaction.  Call ``engine.run_until_idle()`` (or
        the harness's drain helper) to make pending batches flush.
        """
        context = self.client_context(client_name)
        start = self.engine.now if at_time is None else at_time
        if at_time is not None and at_time > self.engine.now:
            handle = self._make_handle(start, function)
            self.engine.schedule_at(
                at_time,
                lambda: self._run_invoke(context, chaincode, function, args, handle, payload_size_bytes),
                label=f"submit:{handle.tx_id}",
            )
            return handle
        handle = self._make_handle(start, function)
        self._run_invoke(context, chaincode, function, args, handle, payload_size_bytes)
        return handle

    def _make_handle(self, submitted_at: float, function: str) -> TransactionHandle:
        return TransactionHandle(
            tx_id=self._tx_ids.next(), submitted_at=submitted_at, function=function
        )

    def _build_proposal(
        self,
        context: _ClientContext,
        handle: TransactionHandle,
        chaincode: str,
        function: str,
        args: List[str],
        payload_size_bytes: int,
    ) -> Proposal:
        unsigned = Proposal(
            tx_id=handle.tx_id,
            channel=self.channel.name,
            chaincode=chaincode,
            function=function,
            args=list(args),
            creator=context.identity.certificate,
            signature="",
            timestamp=self.engine.now,
            size_bytes=0,
        )
        signature = context.identity.sign(unsigned.signed_bytes())
        size = len(unsigned.signed_bytes()) + 512 + payload_size_bytes
        return Proposal(
            tx_id=handle.tx_id,
            channel=self.channel.name,
            chaincode=chaincode,
            function=function,
            args=list(args),
            creator=context.identity.certificate,
            signature=signature,
            timestamp=unsigned.timestamp,
            size_bytes=size,
        )

    def _run_invoke(
        self,
        context: _ClientContext,
        chaincode: str,
        function: str,
        args: List[str],
        handle: TransactionHandle,
        payload_size_bytes: int,
    ) -> None:
        """Run one invoke through the staged pipeline.

        The phases (build-proposal → collect-endorsements → submit-to-orderer
        → await-commit) live in :mod:`repro.middleware.stages`; this wrapper
        only assembles the pipeline context.
        """
        ctx = Context(
            operation=function,
            kind=OperationKind.WRITE,
            chaincode=chaincode,
            function=function,
            args=list(args),
            client_name=context.name,
            payload_size_bytes=payload_size_bytes,
        )
        ctx.tags["invoke"] = InvokeState(
            client_context=context,
            handle=handle,
            chaincode=chaincode,
            function=function,
            args=list(args),
            payload_size_bytes=payload_size_bytes,
        )
        self.invoke_pipeline.execute(ctx)

    def set_order_batch_size(self, batch_size: int) -> None:
        """Reconfigure the endorsement batcher (flushes any queued envelopes)."""
        if batch_size < 1:
            raise ConfigurationError("order batch size must be at least 1")
        self.order_batcher.flush()
        self.config.order_batch_size = batch_size
        self.order_batcher.batch_size = batch_size

    def _collect_endorsements(
        self, context: _ClientContext, proposal: Proposal, sent_at: float
    ) -> Tuple[List[ProposalResponse], float]:
        responses: List[ProposalResponse] = []
        completion_times: List[float] = []
        for peer_name in self._endorsing_peer_names():
            peer = self._peers[peer_name]
            if not self.network.partitions.can_communicate(context.host_node, peer_name):
                continue
            to_peer = self.network.estimate_transfer_time(
                context.host_node, peer_name, proposal.size_bytes
            )
            try:
                response, ready_at = peer.endorse(proposal, sent_at + to_peer)
            except EndorsementError:
                continue
            back = self.network.estimate_transfer_time(
                peer_name, context.host_node, len((response.payload or "")) + 1024
            )
            responses.append(response)
            completion_times.append(ready_at + back)
        if not completion_times:
            return responses, sent_at
        return responses, max(completion_times)

    def _submit_to_orderer(self, transaction: Transaction, handle: TransactionHandle) -> None:
        handle.ordered_at = self.engine.now
        if self.orderer_device is not None:
            duration = self.orderer_device.serialization_time(transaction.size_bytes)
            self.orderer_device.charge_cpu(
                self.engine.now, duration, label=f"order:{transaction.tx_id}"
            )
        self.orderer.submit(transaction)

    # ------------------------------------------------------------- delivery
    def _on_block_ordered(self, block: Block) -> None:
        """Deliver a freshly cut block to every peer and complete handles."""
        self._ordered_blocks.append(block)
        sent_at = self.engine.now
        if self.orderer_device is not None:
            duration = self.orderer_device.serialization_time(block.size_bytes)
            _, sent_at = self.orderer_device.charge_cpu(
                self.engine.now, duration, label=f"cut:{block.number}"
            )

        if self.config.use_gossip:
            arrivals = self.gossip.disseminate(
                self.orderer_node, self.peers, block.size_bytes, sent_at
            )
        else:
            arrivals = {}
            for peer in self.peers:
                if not self.network.partitions.can_communicate(
                    self.orderer_node, peer.name
                ):
                    continue
                transfer = self.network.estimate_transfer_time(
                    self.orderer_node, peer.name, block.size_bytes
                )
                arrivals[peer.name] = sent_at + transfer

        commit_results = {}
        for peer in self.peers:
            if peer.name not in arrivals:
                # Peer is unreachable (partition): it misses this block and
                # will catch up from the orderer's delivery service once the
                # partition heals and the next block reaches it.
                self.metrics.counter("missed_deliveries").inc()
                continue
            self._catch_up_peer(peer, arrivals[peer.name], up_to=block.number)
            commit_results[peer.name] = peer.deliver_block(block, arrivals[peer.name])

        self.metrics.counter("blocks_delivered").inc()
        self.events.publish("block_delivered", {"block": block, "commits": commit_results})

        # Fan committed chaincode events out to network-level subscribers
        # (the client library's event listeners hook in here).
        if commit_results:
            reference = next(iter(commit_results.values()))
            for tx, code in zip(block.transactions, reference.validation_codes):
                if code is TxValidationCode.VALID and tx.chaincode_event is not None:
                    event_name, event_payload = tx.chaincode_event
                    self.events.publish(
                        f"chaincode_event:{event_name}",
                        {
                            "tx_id": tx.tx_id,
                            "name": event_name,
                            "payload": event_payload,
                            "block_number": block.number,
                        },
                    )

        self._complete_handles(block, commit_results)

    def _catch_up_peer(self, peer: Peer, at_time: float, up_to: int) -> None:
        """Deliver any blocks the peer missed before ``up_to`` (in order)."""
        while peer.ledger_height < up_to:
            missed = self._ordered_blocks[peer.ledger_height]
            transfer = self.network.estimate_transfer_time(
                self.orderer_node, peer.name, missed.size_bytes
            )
            peer.deliver_block(missed, at_time + transfer)
            self.metrics.counter("catch_up_blocks").inc()

    def _complete_handles(self, block: Block, commit_results: Dict[str, CommitResult]) -> None:

        # Complete the handles of every client whose anchor peer committed.
        for context in self._clients.values():
            result = commit_results.get(context.anchor_peer)
            if result is None:
                continue
            anchor_peer = self._peers[context.anchor_peer]
            for position, tx in enumerate(block.transactions):
                handle = context.pending.pop(tx.tx_id, None)
                if handle is None:
                    continue
                code = result.validation_codes[position]
                # Commit event reaches the client over the network.
                notify = self.network.estimate_transfer_time(
                    context.anchor_peer, context.host_node, 512
                )
                handle.timings["commit_notify_s"] = notify
                handle.complete(
                    result.committed_at + notify,
                    code,
                    block_number=result.block_number,
                )
                if code is TxValidationCode.VALID:
                    self.metrics.counter("txs_committed").inc()
                else:
                    self.metrics.counter("txs_invalidated").inc()
                self.metrics.histogram("tx_latency_s").observe(handle.latency_s)
            _ = anchor_peer  # anchor peer already charged during deliver_block

    # ---------------------------------------------------------------- query
    def query(
        self,
        client_name: str,
        chaincode: str,
        function: str,
        args: List[str],
        at_time: Optional[float] = None,
        peer_name: Optional[str] = None,
    ) -> Tuple[ProposalResponse, float]:
        """Evaluate a read-only chaincode function on a single peer.

        Returns the response and the end-to-end latency in seconds.
        """
        context = self.client_context(client_name)
        start = self.engine.now if at_time is None else at_time
        target_name = peer_name or context.anchor_peer
        peer = self.peer(target_name)
        handle = self._make_handle(start, function)
        proposal = self._build_proposal(context, handle, chaincode, function, args, 0)

        prep = context.device.sign_time() + self.config.client_overhead_s
        _, prep_done = context.device.charge_cpu(start, prep, label=f"query:{handle.tx_id}")
        to_peer = self.network.estimate_transfer_time(
            context.host_node, target_name, proposal.size_bytes
        )
        response, ready_at = peer.query(proposal, prep_done + to_peer)
        back = self.network.estimate_transfer_time(
            target_name, context.host_node, len(response.payload or "") + 1024
        )
        latency = (ready_at + back) - start
        self.metrics.histogram("query_latency_s").observe(latency)
        return response, latency

    # -------------------------------------------------------------- helpers
    def flush_and_drain(self, max_events: int = 1_000_000) -> None:
        """Force pending batches out and run the simulation until idle.

        Commit callbacks may submit new transactions (closed-loop
        benchmarks), which re-queue envelopes in the endorsement batcher —
        so keep alternating flush/run rounds until both the batcher and
        the orderer are empty and the engine stays idle.
        """
        self.engine.run_until_idle(max_events=max_events)
        while True:
            if self.order_batcher.flush():
                self.engine.run_until_idle(max_events=max_events)
                continue
            self.orderer.flush()
            self.engine.run_until_idle(max_events=max_events)
            if not self.order_batcher.queued:
                break

    def ledger_heights(self) -> Dict[str, int]:
        """Block height of every peer (should agree once drained)."""
        return {name: peer.ledger_height for name, peer in self._peers.items()}

    def in_flight(self, client_name: Optional[str] = None) -> int:
        """Handles awaiting their anchor-peer commit (optionally per client).

        Counts transactions that reached the await-commit stage; envelopes
        still queued in the endorsement batcher or scheduled for a future
        virtual time are not yet registered here (the session facade's
        ``in_flight`` tracks the full submission-to-commit window).
        """
        if client_name is not None:
            return len(self.client_context(client_name).pending)
        return sum(len(context.pending) for context in self._clients.values())
