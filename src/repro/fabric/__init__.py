"""The permissioned-blockchain substrate (Hyperledger-Fabric-like).

Implements Fabric's execute-order-validate architecture:

1. **Execute** — a client sends a proposal to endorsing peers; each peer
   simulates the chaincode against its committed state, producing a
   read/write set, and signs the result (:class:`~repro.fabric.peer.Peer`).
2. **Order** — the client assembles the endorsed transaction and submits
   it to the ordering service, which batches transactions into blocks
   (:mod:`repro.consensus`).
3. **Validate** — every peer receives each block, checks the endorsement
   policy and performs MVCC validation against its world state, then
   commits the valid transactions and indexes key history.

:class:`~repro.fabric.network.FabricNetwork` wires clients, peers, the
orderer, the simulated network and the device models together and is the
substrate the HyperProv client library runs on.
"""

from repro.fabric.proposal import Proposal, ProposalResponse, TransactionHandle
from repro.fabric.peer import Peer, CommitResult
from repro.fabric.channel import Channel
from repro.fabric.gossip import GossipDisseminator
from repro.fabric.network import FabricNetwork, FabricNetworkConfig

__all__ = [
    "Proposal",
    "ProposalResponse",
    "TransactionHandle",
    "Peer",
    "CommitResult",
    "Channel",
    "GossipDisseminator",
    "FabricNetwork",
    "FabricNetworkConfig",
]
