"""Peers: endorsement, validation and commit.

Each peer holds its own copy of the ledger (block store, world state,
history index), hosts the installed chaincode, and runs on a
:class:`~repro.devices.model.DeviceModel` so every endorsement and commit
charges CPU/disk time on the machine it would have run on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.chaincode.shim import ChaincodeStub
from repro.common.errors import ChaincodeError, EndorsementError
from repro.common.events import EventBus
from repro.common.metrics import MetricsRegistry
from repro.devices.model import DeviceModel
from repro.fabric.channel import Channel
from repro.fabric.proposal import Proposal, ProposalResponse
from repro.ledger.block import Block
from repro.ledger.blockchain import BlockStore
from repro.ledger.history import HistoryDatabase
from repro.ledger.transaction import (
    Endorsement,
    ReadWriteSet,
    Transaction,
    TxValidationCode,
    Version,
)
from repro.ledger.world_state import WorldState
from repro.membership.identity import Identity


@dataclass
class CommitResult:
    """Outcome of delivering one block to one peer."""

    peer: str
    block_number: int
    received_at: float
    committed_at: float
    validation_codes: List[TxValidationCode] = field(default_factory=list)
    valid_count: int = 0
    invalid_count: int = 0

    @property
    def commit_duration_s(self) -> float:
        return self.committed_at - self.received_at


class Peer:
    """A Fabric peer node."""

    def __init__(
        self,
        name: str,
        identity: Identity,
        device: DeviceModel,
        channel: Channel,
        event_bus: Optional[EventBus] = None,
        metrics: Optional[MetricsRegistry] = None,
        parallel_validation: bool = False,
    ) -> None:
        self.name = name
        self.identity = identity
        self.device = device
        self.channel = channel
        self.events = event_bus or EventBus()
        self.metrics = metrics or MetricsRegistry(f"peer.{name}")
        #: FastFabric-style optimization (Gorenflo et al., cited by the
        #: paper): validate endorsement signatures on all cores in parallel
        #: instead of a single validator thread.
        self.parallel_validation = parallel_validation
        self.block_store = BlockStore()
        self.world_state = WorldState()
        self.history = HistoryDatabase()
        self._committed_tx_ids: Set[str] = set()
        # Metric handles resolved once: name-based registry lookups are
        # measurable when repeated for every endorsement and commit.
        self._endorsements_counter = self.metrics.counter("endorsements")
        self._endorse_time = self.metrics.histogram("endorse_time_s")
        self._queries_counter = self.metrics.counter("queries")
        self._blocks_committed = self.metrics.counter("blocks_committed")
        self._txs_valid = self.metrics.counter("txs_valid")
        self._txs_invalid = self.metrics.counter("txs_invalid")
        self._commit_time = self.metrics.histogram("commit_time_s")
        channel.join(name)

    # -------------------------------------------------------------- endorse
    def endorse(self, proposal: Proposal, at_time: float) -> Tuple[ProposalResponse, float]:
        """Simulate the chaincode for ``proposal`` and endorse the result.

        Returns the response and the virtual time at which it is ready to
        leave the peer (after CPU queueing on this device).
        """
        definition = self.channel.chaincodes.get(proposal.chaincode)
        if not definition.is_installed_on(self.name):
            raise EndorsementError(
                f"chaincode {proposal.chaincode!r} is not installed on peer {self.name!r}"
            )
        # Validate the submitting client before doing any work.
        msp = self.channel.msp
        if not msp.verify_signature(
            proposal.creator, proposal.signed_bytes(), proposal.signature
        ):
            response = ProposalResponse(
                tx_id=proposal.tx_id,
                peer=self.name,
                status=500,
                payload=None,
                message="client signature rejected by MSP",
                rw_set=ReadWriteSet(),
                endorsement=None,
                produced_at=at_time,
            )
            return response, at_time

        # Simulate the chaincode against committed state.
        stub = ChaincodeStub(
            tx_id=proposal.tx_id,
            channel=self.channel.name,
            function=proposal.function,
            args=list(proposal.args),
            world_state=self.world_state,
            history=self.history,
            creator=proposal.creator,
            timestamp=proposal.timestamp,
        )
        try:
            result = definition.chaincode.invoke(stub)
        except Exception as exc:  # noqa: BLE001 - chaincode bugs become 500s
            raise ChaincodeError(f"chaincode {proposal.chaincode!r} crashed: {exc}") from exc

        # Charge device time: signature verification of the client,
        # chaincode execution (container IPC + state ops), response signing.
        duration = (
            self.device.verify_time()
            + self.device.chaincode_time(stub.state_operations, proposal.size_bytes)
            + self.device.sign_time()
        )
        _, finished_at = self.device.charge_cpu(at_time, duration, label=f"endorse:{proposal.tx_id}")

        self._endorsements_counter.inc()
        self._endorse_time.observe(finished_at - at_time)

        if not result.is_ok:
            response = ProposalResponse(
                tx_id=proposal.tx_id,
                peer=self.name,
                status=result.status,
                payload=result.payload,
                message=result.message,
                rw_set=stub.rw_set,
                endorsement=None,
                produced_at=finished_at,
            )
            return response, finished_at

        response_digest = stub.rw_set.digest()
        signature = self.identity.sign(response_digest.encode("ascii"))
        endorsement = Endorsement(
            endorser=self.name,
            organization=self.identity.organization,
            certificate=self.identity.certificate,
            signature=signature,
            response_digest=response_digest,
        )
        response = ProposalResponse(
            tx_id=proposal.tx_id,
            peer=self.name,
            status=result.status,
            payload=result.payload,
            message=result.message,
            rw_set=stub.rw_set,
            endorsement=endorsement,
            produced_at=finished_at,
            chaincode_event=stub.event,
        )
        return response, finished_at

    # ---------------------------------------------------------------- query
    def query(self, proposal: Proposal, at_time: float) -> Tuple[ProposalResponse, float]:
        """Evaluate a read-only invocation (no ordering, no commit)."""
        response, finished_at = self.endorse(proposal, at_time)
        self._queries_counter.inc()
        return response, finished_at

    # --------------------------------------------------------------- commit
    def deliver_block(self, block: Block, at_time: float) -> CommitResult:
        """Validate and commit a block received from the ordering service."""
        # Each peer stores its own Block object but *shares* the sealed,
        # effectively-immutable transaction envelopes with the orderer and
        # the other peers (FastFabric-style zero-copy commit).  Per-peer
        # ledger isolation for tamper-evidence experiments is preserved by
        # the explicit copy-on-write hook (``Block.tamper`` /
        # ``Peer.tamper``) instead of an unconditional deep copy.
        validation_codes: List[TxValidationCode] = []
        verify_ops = 0

        block_number = self.block_store.height
        for tx_position, tx in enumerate(block.transactions):
            code = self._validate_transaction(tx)
            if code is TxValidationCode.VALID:
                version: Version = (block_number, tx_position)
                self._apply_writes(tx, version, block.header.timestamp)
                self._committed_tx_ids.add(tx.tx_id)
            validation_codes.append(code)
            verify_ops += max(1, len(tx.endorsements))

        validated_block = Block(
            header=block.header,
            transactions=block.transactions,
            validation_flags=validation_codes,
            orderer=block.orderer,
        )
        self.block_store.append(validated_block)

        # Charge device time: verify endorsement signatures, MVCC checks
        # (cheap), write the block to disk.  With FastFabric-style parallel
        # validation the signature checks are spread over every core.
        verify_duration = self.device.verify_time(verify_ops)
        if self.parallel_validation:
            verify_duration /= self.device.profile.cores
        cpu_duration = verify_duration + self.device.serialization_time(block.size_bytes)
        _, cpu_done = self.device.charge_cpu(at_time, cpu_duration, label=f"validate:{block.number}")
        disk_duration = self.device.disk_write_time(block.size_bytes)
        _, committed_at = self.device.occupy(
            "disk", cpu_done, disk_duration, label=f"commit:{block.number}"
        )

        valid = sum(1 for c in validation_codes if c is TxValidationCode.VALID)
        result = CommitResult(
            peer=self.name,
            block_number=validated_block.number,
            received_at=at_time,
            committed_at=committed_at,
            validation_codes=validation_codes,
            valid_count=valid,
            invalid_count=len(validation_codes) - valid,
        )

        self._blocks_committed.inc()
        self._txs_valid.inc(valid)
        self._txs_invalid.inc(len(validation_codes) - valid)
        self._commit_time.observe(result.commit_duration_s)

        self.events.publish(
            "block_committed",
            {"peer": self.name, "block": validated_block, "result": result},
        )
        for tx, code in zip(block.transactions, validation_codes):
            self.events.publish(
                f"tx_committed:{tx.tx_id}",
                {
                    "peer": self.name,
                    "tx_id": tx.tx_id,
                    "code": code,
                    "committed_at": committed_at,
                    "block_number": validated_block.number,
                },
            )
            if code is TxValidationCode.VALID and tx.chaincode_event is not None:
                event_name, event_payload = tx.chaincode_event
                self.events.publish(
                    f"chaincode_event:{event_name}",
                    {
                        "peer": self.name,
                        "tx_id": tx.tx_id,
                        "name": event_name,
                        "payload": event_payload,
                        "block_number": validated_block.number,
                    },
                )
        return result

    # ------------------------------------------------------------ validation
    def _validate_transaction(self, tx: Transaction) -> TxValidationCode:
        if tx.tx_id in self._committed_tx_ids:
            return TxValidationCode.DUPLICATE_TXID

        definition = self.channel.chaincodes.find(tx.chaincode)
        if definition is None:
            return TxValidationCode.INVALID_OTHER_REASON

        msp = self.channel.msp
        # Endorsement signature + certificate validation.
        valid_orgs = set()
        expected_digest = tx.rw_set.digest()
        for endorsement in tx.endorsements:
            if endorsement.response_digest != expected_digest:
                return TxValidationCode.BAD_SIGNATURE
            if not msp.validate_certificate(endorsement.certificate):
                continue
            valid_orgs.add(endorsement.organization)
        if not definition.endorsement_policy.evaluate(valid_orgs):
            return TxValidationCode.ENDORSEMENT_POLICY_FAILURE

        # MVCC validation: every read version must still be current.
        for read in tx.rw_set.reads:
            current = self.world_state.get_version(read.key)
            recorded = tuple(read.version) if read.version is not None else None
            if current != recorded:
                return TxValidationCode.MVCC_READ_CONFLICT
        return TxValidationCode.VALID

    def _apply_writes(self, tx: Transaction, version: Version, timestamp: float) -> None:
        for write in tx.rw_set.writes:
            if write.is_delete:
                self.world_state.delete(write.key, version)
            else:
                self.world_state.put(write.key, write.value or "", version)
            self.history.record(
                key=write.key,
                tx_id=tx.tx_id,
                block_number=version[0],
                tx_number=version[1],
                timestamp=timestamp,
                value=write.value,
                is_delete=write.is_delete,
            )

    # --------------------------------------------------------------- tamper
    def tamper(self, block_number: int, tx_position: int) -> Transaction:
        """Rewrite one committed transaction in *this peer's* ledger copy.

        The copy-on-write hook for tamper-evidence experiments: because
        committed blocks share sealed transaction objects across peers,
        mutating them in place is forbidden — this clones the target
        transaction into this peer's block (``Block.tamper``) and returns
        the mutable clone.  The rewrite stays invisible to every other
        peer, and this peer's chain verification breaks as soon as the
        clone is modified — the clone's bytes are recomputed on every
        hash check instead of served from the sealed cache.
        """
        return self.block_store.block(block_number).tamper(tx_position)

    # ------------------------------------------------------------- inspection
    @property
    def ledger_height(self) -> int:
        return self.block_store.height

    def committed(self, tx_id: str) -> bool:
        """Whether the peer has committed a valid transaction with this id."""
        return tx_id in self._committed_tx_ids

    def state_snapshot(self) -> Dict[str, str]:
        return self.world_state.snapshot()
