"""Gossip-based block dissemination.

In Fabric the ordering service delivers blocks to each organization's
*leader* peer, which gossips them to the other peers of its organization.
On the paper's four-node, single-org-per-node testbeds this collapses to
direct delivery, but the module is exercised by the multi-peer-per-org
tests and lets larger topologies avoid an orderer fan-out bottleneck.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.metrics import MetricsRegistry
from repro.fabric.peer import Peer
from repro.network.fabric import NetworkFabric


class GossipDisseminator:
    """Computes the per-peer block arrival times for one organization."""

    def __init__(
        self,
        network: NetworkFabric,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.network = network
        self.metrics = metrics or MetricsRegistry("gossip")

    def elect_leaders(self, peers: List[Peer]) -> Dict[str, Peer]:
        """Pick one leader peer per organization (lowest name wins — static
        leader election, matching ``CORE_PEER_GOSSIP_USELEADERELECTION=false``)."""
        leaders: Dict[str, Peer] = {}
        for peer in sorted(peers, key=lambda p: p.name):
            leaders.setdefault(peer.identity.organization, peer)
        return leaders

    def disseminate(
        self,
        source_node: str,
        peers: List[Peer],
        block_size_bytes: int,
        sent_at: float,
    ) -> Dict[str, float]:
        """Arrival time of a block at every peer.

        The block travels ``orderer → org leader → org members``; peers that
        cannot be reached (partition) are omitted from the result and will
        catch up when the partition heals.
        """
        arrivals: Dict[str, float] = {}
        leaders = self.elect_leaders(peers)
        by_org: Dict[str, List[Peer]] = {}
        for peer in peers:
            by_org.setdefault(peer.identity.organization, []).append(peer)

        for org, org_peers in by_org.items():
            leader = leaders[org]
            if not self.network.partitions.can_communicate(source_node, leader.name):
                continue
            leader_latency = self.network.estimate_transfer_time(
                source_node, leader.name, block_size_bytes
            )
            leader_arrival = sent_at + leader_latency
            arrivals[leader.name] = leader_arrival
            self.metrics.histogram("leader_hop_s").observe(leader_latency)
            for peer in org_peers:
                if peer.name == leader.name:
                    continue
                if not self.network.partitions.can_communicate(leader.name, peer.name):
                    continue
                hop = self.network.estimate_transfer_time(
                    leader.name, peer.name, block_size_bytes
                )
                arrivals[peer.name] = leader_arrival + hop
                self.metrics.histogram("member_hop_s").observe(hop)
        return arrivals
