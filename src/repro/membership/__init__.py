"""Membership Service Provider (MSP) layer.

Permissioned blockchains differ from public ones precisely here: every
participant holds an identity issued by an organization's certificate
authority, and policies over those organizations gate endorsement and
channel access.  This package models organizations, enrolled identities,
the MSP validation rules and signature policies.
"""

from repro.membership.identity import Identity, Organization
from repro.membership.msp import MSP
from repro.membership.policies import (
    Policy,
    SignaturePolicy,
    AndPolicy,
    OrPolicy,
    OutOfPolicy,
    majority_of,
)

__all__ = [
    "Identity",
    "Organization",
    "MSP",
    "Policy",
    "SignaturePolicy",
    "AndPolicy",
    "OrPolicy",
    "OutOfPolicy",
    "majority_of",
]
