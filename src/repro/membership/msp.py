"""The Membership Service Provider: validates identities and signatures.

Each channel carries an MSP configuration listing the trusted organizations
(their CA root keys).  Peers use the MSP to check that a submitting client
or an endorsing peer belongs to the consortium and that its certificate is
valid and unrevoked, and to verify signatures produced by those identities.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.common.errors import CryptoError, NotFoundError
from repro.crypto.certificates import Certificate
from repro.crypto.keys import verify
from repro.membership.identity import Organization


class MSP:
    """Validates certificates and signatures against a set of organizations."""

    def __init__(self, organizations: Iterable[Organization] = ()) -> None:
        self._organizations: Dict[str, Organization] = {}
        for org in organizations:
            self.add_organization(org)

    def add_organization(self, organization: Organization) -> None:
        """Admit an organization (its CA becomes a trust anchor)."""
        self._organizations[organization.name] = organization

    def remove_organization(self, name: str) -> None:
        """Expel an organization; its members immediately fail validation."""
        self._organizations.pop(name, None)

    def organization(self, name: str) -> Organization:
        org = self._organizations.get(name)
        if org is None:
            raise NotFoundError(f"organization {name!r} is not part of this MSP")
        return org

    @property
    def organization_names(self) -> List[str]:
        return sorted(self._organizations)

    def validate_certificate(self, certificate: Certificate) -> bool:
        """Return ``True`` iff the certificate chains to a trusted, unrevoked CA."""
        org = self._organizations.get(certificate.organization)
        if org is None:
            return False
        return org.ca.validate(certificate)

    def require_valid_certificate(self, certificate: Certificate) -> None:
        """Raise :class:`~repro.common.errors.CryptoError` on invalid certificates."""
        if not self.validate_certificate(certificate):
            raise CryptoError(
                f"certificate for {certificate.subject!r} "
                f"({certificate.organization}) failed MSP validation"
            )

    def verify_signature(
        self, certificate: Certificate, message: bytes, signature: str
    ) -> bool:
        """Validate the certificate *and* the signature it claims to cover."""
        if not self.validate_certificate(certificate):
            return False
        return verify(certificate.public_key, message, signature)

    def member_organizations_of(self, certificates: Iterable[Certificate]) -> List[str]:
        """Distinct organizations represented by a set of valid certificates."""
        orgs = {
            cert.organization
            for cert in certificates
            if self.validate_certificate(cert)
        }
        return sorted(orgs)
