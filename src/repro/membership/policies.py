"""Signature policies (Fabric endorsement-policy style).

A policy is evaluated against the set of organizations whose valid
signatures were collected for a proposal.  Policies compose:

* :class:`SignaturePolicy` — a single organization must have signed,
* :class:`AndPolicy` — all sub-policies must be satisfied,
* :class:`OrPolicy` — at least one sub-policy must be satisfied,
* :class:`OutOfPolicy` — at least *n* of the sub-policies must be satisfied.

``majority_of(orgs)`` builds the common "majority of the consortium" rule.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Sequence, Set


class Policy(ABC):
    """Base class for signature policies."""

    @abstractmethod
    def evaluate(self, signed_organizations: Set[str]) -> bool:
        """Return ``True`` iff the policy is satisfied by these signers."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable policy expression (used in logs and reports)."""

    def __call__(self, signed_organizations: Iterable[str]) -> bool:
        return self.evaluate(set(signed_organizations))


class SignaturePolicy(Policy):
    """Requires a signature from one specific organization."""

    def __init__(self, organization: str) -> None:
        self.organization = organization

    def evaluate(self, signed_organizations: Set[str]) -> bool:
        return self.organization in signed_organizations

    def describe(self) -> str:
        return f"Org({self.organization})"


class AndPolicy(Policy):
    """All sub-policies must hold."""

    def __init__(self, *children: Policy) -> None:
        if not children:
            raise ValueError("AndPolicy requires at least one child policy")
        self.children: Sequence[Policy] = children

    def evaluate(self, signed_organizations: Set[str]) -> bool:
        return all(child.evaluate(signed_organizations) for child in self.children)

    def describe(self) -> str:
        return "AND(" + ", ".join(c.describe() for c in self.children) + ")"


class OrPolicy(Policy):
    """At least one sub-policy must hold."""

    def __init__(self, *children: Policy) -> None:
        if not children:
            raise ValueError("OrPolicy requires at least one child policy")
        self.children: Sequence[Policy] = children

    def evaluate(self, signed_organizations: Set[str]) -> bool:
        return any(child.evaluate(signed_organizations) for child in self.children)

    def describe(self) -> str:
        return "OR(" + ", ".join(c.describe() for c in self.children) + ")"


class OutOfPolicy(Policy):
    """At least ``threshold`` of the sub-policies must hold (Fabric's NOutOf)."""

    def __init__(self, threshold: int, children: Sequence[Policy]) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if threshold > len(children):
            raise ValueError("threshold cannot exceed the number of child policies")
        self.threshold = threshold
        self.children: List[Policy] = list(children)

    def evaluate(self, signed_organizations: Set[str]) -> bool:
        satisfied = sum(
            1 for child in self.children if child.evaluate(signed_organizations)
        )
        return satisfied >= self.threshold

    def describe(self) -> str:
        inner = ", ".join(c.describe() for c in self.children)
        return f"OutOf({self.threshold}, [{inner}])"


def majority_of(organizations: Sequence[str]) -> OutOfPolicy:
    """Policy requiring signatures from a strict majority of ``organizations``."""
    if not organizations:
        raise ValueError("cannot build a majority policy over zero organizations")
    children = [SignaturePolicy(org) for org in organizations]
    threshold = len(organizations) // 2 + 1
    return OutOfPolicy(threshold, children)


def any_of(organizations: Sequence[str]) -> OrPolicy:
    """Policy satisfied by a signature from any one of ``organizations``."""
    return OrPolicy(*[SignaturePolicy(org) for org in organizations])


def all_of(organizations: Sequence[str]) -> AndPolicy:
    """Policy requiring signatures from every one of ``organizations``."""
    return AndPolicy(*[SignaturePolicy(org) for org in organizations])
