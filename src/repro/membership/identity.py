"""Organizations and enrolled identities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.errors import NotFoundError
from repro.crypto.certificates import Certificate, CertificateAuthority
from repro.crypto.keys import KeyPair


@dataclass
class Identity:
    """An enrolled identity: name, key pair and CA-issued certificate."""

    name: str
    organization: str
    keys: KeyPair = field(repr=False)
    certificate: Certificate

    def sign(self, message: bytes) -> str:
        """Sign ``message`` with this identity's private key."""
        return self.keys.sign(message)

    @property
    def msp_id(self) -> str:
        """The MSP identifier for the owning organization."""
        return self.organization

    @property
    def public_key(self) -> str:
        return self.keys.public_key


class Organization:
    """A consortium member: owns a CA and enrolls peers, orderers and clients."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.ca = CertificateAuthority(name=f"{name}-ca", organization=name)
        self._identities: Dict[str, Identity] = {}

    def enroll(self, identity_name: str, role: str = "member") -> Identity:
        """Create keys and issue a certificate for ``identity_name``.

        Enrollment is idempotent — re-enrolling the same name returns the
        existing identity, matching how a Fabric CA's enrollment is reused.
        """
        if identity_name in self._identities:
            return self._identities[identity_name]
        keys = KeyPair.generate(f"{self.name}:{identity_name}")
        certificate = self.ca.issue(identity_name, keys.public_key, role=role)
        identity = Identity(
            name=identity_name,
            organization=self.name,
            keys=keys,
            certificate=certificate,
        )
        self._identities[identity_name] = identity
        return identity

    def get_identity(self, identity_name: str) -> Identity:
        """Return a previously enrolled identity or raise ``NotFoundError``."""
        identity = self._identities.get(identity_name)
        if identity is None:
            raise NotFoundError(
                f"identity {identity_name!r} is not enrolled with organization {self.name!r}"
            )
        return identity

    def revoke(self, identity_name: str) -> None:
        """Revoke an identity's certificate (it will fail MSP validation)."""
        identity = self.get_identity(identity_name)
        self.ca.revoke(identity.certificate)

    def find(self, identity_name: str) -> Optional[Identity]:
        return self._identities.get(identity_name)

    @property
    def identity_count(self) -> int:
        return len(self._identities)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Organization({self.name!r}, identities={self.identity_count})"
