"""Ordering services (consensus).

Hyperledger Fabric v1.4 ships the Solo orderer and (from v1.4.1) Raft.
The paper's testbeds run a single orderer (Solo); the Raft implementation
here is used by the consensus ablation benchmark.  A Proof-of-Work engine
is included solely for the ProvChain-style public-blockchain baseline.
"""

from repro.consensus.batching import BatchConfig, BlockCutter
from repro.consensus.base import OrderingService
from repro.consensus.scheduler import (
    FairShareScheduler,
    FifoScheduler,
    OrderingScheduler,
    SCHEDULER_NAMES,
    make_scheduler,
    tenant_of_key,
    tenant_of_transaction,
)
from repro.consensus.solo import SoloOrderingService
from repro.consensus.raft import RaftNode, RaftState, RaftOrderingService
from repro.consensus.pow import ProofOfWorkEngine

__all__ = [
    "BatchConfig",
    "BlockCutter",
    "OrderingService",
    "OrderingScheduler",
    "FifoScheduler",
    "FairShareScheduler",
    "SCHEDULER_NAMES",
    "make_scheduler",
    "tenant_of_key",
    "tenant_of_transaction",
    "SoloOrderingService",
    "RaftNode",
    "RaftState",
    "RaftOrderingService",
    "ProofOfWorkEngine",
]
