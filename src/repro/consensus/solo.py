"""The Solo ordering service: a single orderer, no fault tolerance.

This is what the paper's testbeds run ("one Xeon machine runs the
orderer").  Batches become blocks immediately, after a small processing
delay charged to the orderer's device model (if one is attached).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.metrics import MetricsRegistry
from repro.consensus.base import OrderingService
from repro.consensus.batching import BatchConfig
from repro.consensus.scheduler import OrderingScheduler
from repro.ledger.transaction import Transaction
from repro.simulation.engine import SimulationEngine


class SoloOrderingService(OrderingService):
    """Single-node ordering: cut batch → assemble block → deliver."""

    def __init__(
        self,
        name: str,
        engine: SimulationEngine,
        batch_config: Optional[BatchConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        ordering_delay_s: float = 0.0,
        scheduler: Optional[OrderingScheduler] = None,
        intake_interval_s: float = 0.0,
    ) -> None:
        super().__init__(
            name,
            engine,
            batch_config,
            metrics,
            scheduler=scheduler,
            intake_interval_s=intake_interval_s,
        )
        #: Fixed processing time per block (set by the node model when the
        #: orderer runs on a constrained device).
        self.ordering_delay_s = ordering_delay_s

    def _order_batch(self, batch: List[Transaction]) -> None:
        block = self._assemble_block(batch)
        if self.ordering_delay_s > 0:
            self.engine.schedule_in(
                self.ordering_delay_s,
                lambda b=block: self._deliver_block(b),
                label=f"{self.name}:deliver-block-{block.number}",
            )
        else:
            self._deliver_block(block)
