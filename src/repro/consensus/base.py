"""Common ordering-service machinery: batch → block assembly and delivery."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional

from repro.common.errors import ConfigurationError, OrderingError
from repro.common.metrics import MetricsRegistry
from repro.consensus.batching import BatchConfig, BlockCutter
from repro.consensus.scheduler import (
    FifoScheduler,
    OrderingScheduler,
    adopt_backlog,
)
from repro.ledger.block import Block
from repro.ledger.blockchain import GENESIS_PREVIOUS_HASH
from repro.ledger.transaction import Transaction
from repro.simulation.engine import SimulationEngine

BlockConsumer = Callable[[Block], None]


class OrderingService(ABC):
    """Base class for ordering services.

    Subclasses implement :meth:`_order_batch`, which takes a cut batch and
    must eventually call :meth:`_deliver_block` (immediately for Solo,
    after replication for Raft).

    Intake runs through a pluggable :class:`OrderingScheduler`: every
    ``submit`` enqueues, and the pump feeds the block cutter in scheduler
    order.  With the default FIFO scheduler and no intake interval the
    pump is synchronous and reproduces the historical arrival-order
    behaviour exactly.  ``intake_interval_s`` models the orderer's
    per-envelope processing cost (signature check, channel mux, re-wrap):
    when positive, the pump drains one transaction per interval, so a
    backlog can form and the scheduler's ordering policy becomes visible.
    """

    def __init__(
        self,
        name: str,
        engine: SimulationEngine,
        batch_config: Optional[BatchConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        scheduler: Optional[OrderingScheduler] = None,
        intake_interval_s: float = 0.0,
    ) -> None:
        if intake_interval_s < 0:
            raise ConfigurationError("intake_interval_s must be >= 0")
        self.name = name
        self.engine = engine
        self.batch_config = batch_config or BatchConfig()
        self.cutter = BlockCutter(self.batch_config)
        self.metrics = metrics or MetricsRegistry(f"orderer.{name}")
        self.scheduler: OrderingScheduler = scheduler or FifoScheduler()
        self.intake_interval_s = intake_interval_s
        self._consumers: List[BlockConsumer] = []
        self._next_block_number = 0
        self._previous_hash = GENESIS_PREVIOUS_HASH
        self._timeout_event = None
        self._pump_event = None
        self._stalled = False
        self.blocks_delivered = 0
        self.transactions_ordered = 0

    # ---------------------------------------------------------------- wiring
    def register_consumer(self, consumer: BlockConsumer) -> None:
        """Register a callback invoked with every newly ordered block."""
        self._consumers.append(consumer)

    def set_scheduler(self, scheduler: OrderingScheduler) -> None:
        """Swap the intake scheduler, preserving any queued backlog."""
        adopt_backlog(self.scheduler, scheduler)
        self.scheduler = scheduler

    # ---------------------------------------------------------------- intake
    def submit(self, tx: Transaction) -> None:
        """Submit a transaction for ordering."""
        self.metrics.counter("submitted").inc()
        self.scheduler.enqueue(tx, now=self.engine.now)
        self._pump()

    def stall(self) -> None:
        """Freeze intake (fault injection): submissions queue but are not
        fed to the cutter, modelling an orderer whose ingest path wedged.

        Already-cut batches still deliver and the batch timeout still
        fires — only the scheduler→cutter pump stops.  ``flush`` becomes a
        no-op while stalled, so a drain leaves the backlog in place and
        reports ``"deadlock"`` instead of silently ordering it.
        """
        if self._stalled:
            return
        self._stalled = True
        if self._pump_event is not None:
            self._pump_event.cancel()
            self._pump_event = None
        self.metrics.counter("stalls").inc()

    def resume(self) -> None:
        """Un-freeze intake and pump any backlog that accumulated."""
        if not self._stalled:
            return
        self._stalled = False
        self._pump()

    @property
    def stalled(self) -> bool:
        return self._stalled

    def _pump(self) -> None:
        """Feed queued transactions from the scheduler into the cutter."""
        if self._stalled:
            return
        if self.intake_interval_s <= 0:
            while True:
                tx = self.scheduler.next_transaction()
                if tx is None:
                    break
                self._cut_through(tx)
            self._arm_timeout()
            return
        if self._pump_event is None and self.scheduler.pending:
            self._pump_event = self.engine.schedule_in(
                self.intake_interval_s, self._pump_tick, label=f"{self.name}:intake"
            )

    def _pump_tick(self) -> None:
        self._pump_event = None
        tx = self.scheduler.next_transaction()
        if tx is not None:
            self._cut_through(tx)
            self._arm_timeout()
        if self.scheduler.pending:
            self._pump_event = self.engine.schedule_in(
                self.intake_interval_s, self._pump_tick, label=f"{self.name}:intake"
            )

    def _cut_through(self, tx: Transaction) -> None:
        batch = self.cutter.add(tx, now=self.engine.now)
        if batch is not None:
            self._order_batch(batch)

    def _arm_timeout(self) -> None:
        """(Re)arm the batch-timeout event for the currently pending batch."""
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        deadline = self.cutter.next_timeout_deadline()
        if deadline is None:
            return
        self._timeout_event = self.engine.schedule_at(
            deadline, self._on_timeout, label=f"{self.name}:batch-timeout"
        )

    def _on_timeout(self) -> None:
        self._timeout_event = None
        batch = self.cutter.check_timeout(now=self.engine.now)
        if batch:
            self._order_batch(batch)
        self._arm_timeout()

    def flush(self) -> None:
        """Cut and order any pending transactions immediately.

        Drains the intake scheduler (regardless of any intake interval)
        into the cutter first, then force-cuts — the drain-time semantics
        benchmarks rely on.  A stalled orderer refuses to flush: the
        backlog stays queued until :meth:`resume`.
        """
        if self._stalled:
            return
        if self._pump_event is not None:
            self._pump_event.cancel()
            self._pump_event = None
        while True:
            tx = self.scheduler.next_transaction()
            if tx is None:
                break
            self._cut_through(tx)
        batch = self.cutter.flush()
        if batch:
            self._order_batch(batch)

    @property
    def intake_backlog(self) -> int:
        """Transactions submitted but not yet fed to the block cutter."""
        return self.scheduler.pending

    # -------------------------------------------------------------- delivery
    def _assemble_block(self, batch: List[Transaction]) -> Block:
        block = Block.build(
            number=self._next_block_number,
            previous_hash=self._previous_hash,
            transactions=batch,
            timestamp=self.engine.now,
            orderer=self.name,
        )
        self._next_block_number += 1
        self._previous_hash = block.hash
        return block

    def _deliver_block(self, block: Block) -> None:
        if not self._consumers:
            raise OrderingError(
                f"ordering service {self.name!r} has no registered block consumers"
            )
        self.blocks_delivered += 1
        self.transactions_ordered += block.tx_count
        self.metrics.counter("blocks").inc()
        self.metrics.counter("ordered_txs").inc(block.tx_count)
        self.metrics.histogram("block_size_txs").observe(block.tx_count)
        for consumer in self._consumers:
            consumer(block)

    # -------------------------------------------------------------- abstract
    @abstractmethod
    def _order_batch(self, batch: List[Transaction]) -> None:
        """Order one cut batch; must eventually deliver exactly one block."""
