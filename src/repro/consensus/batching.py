"""Block cutting: grouping transactions into batches.

Fabric's orderer cuts a block when any of three conditions is met:
``MaxMessageCount`` transactions are pending, the pending batch exceeds
``PreferredMaxBytes``, or ``BatchTimeout`` elapses after the first pending
transaction arrived.  The same three knobs are exposed here and swept by
the batching ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.ledger.transaction import Transaction


@dataclass(frozen=True)
class BatchConfig:
    """Orderer batching parameters (Fabric ``BatchSize``/``BatchTimeout``)."""

    max_message_count: int = 10
    preferred_max_bytes: int = 512 * 1024
    batch_timeout_s: float = 2.0

    def validate(self) -> None:
        if self.max_message_count < 1:
            raise ConfigurationError("max_message_count must be >= 1")
        if self.preferred_max_bytes < 1024:
            raise ConfigurationError("preferred_max_bytes must be >= 1 KiB")
        if self.batch_timeout_s <= 0:
            raise ConfigurationError("batch_timeout_s must be positive")


class BlockCutter:
    """Accumulates transactions and decides when a batch is complete."""

    def __init__(self, config: BatchConfig) -> None:
        config.validate()
        self.config = config
        self._pending: List[Transaction] = []
        self._pending_bytes = 0
        self._first_pending_at: Optional[float] = None
        self.batches_cut = 0

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes

    @property
    def first_pending_at(self) -> Optional[float]:
        """Virtual time at which the oldest pending transaction arrived."""
        return self._first_pending_at

    def add(self, tx: Transaction, now: float) -> Optional[List[Transaction]]:
        """Add a transaction; return a completed batch if one was cut.

        An oversized transaction (alone larger than ``preferred_max_bytes``)
        is cut into its own batch immediately, matching Fabric's behaviour.
        """
        tx_bytes = tx.size_bytes
        if tx_bytes >= self.config.preferred_max_bytes:
            # Flush whatever is pending first so ordering is preserved,
            # then emit the oversized transaction as a singleton batch.
            leftover = self._cut() if self._pending else []
            self.batches_cut += 1
            if leftover:
                # Two batches result; the caller gets them concatenated in
                # order via a sentinel second call.  Keep it simple: return
                # the pending batch and stash the big tx as the new pending
                # batch to be cut on the next check.
                self._pending = [tx]
                self._pending_bytes = tx_bytes
                self._first_pending_at = now
                return leftover
            return [tx]

        if not self._pending:
            self._first_pending_at = now
        self._pending.append(tx)
        self._pending_bytes += tx_bytes

        if len(self._pending) >= self.config.max_message_count:
            return self._cut()
        if self._pending_bytes >= self.config.preferred_max_bytes:
            return self._cut()
        return None

    def check_timeout(self, now: float) -> Optional[List[Transaction]]:
        """Cut the pending batch if the batch timeout has expired."""
        if not self._pending or self._first_pending_at is None:
            return None
        if now - self._first_pending_at >= self.config.batch_timeout_s - 1e-9:
            return self._cut()
        return None

    def flush(self) -> Optional[List[Transaction]]:
        """Force-cut whatever is pending (used at simulation shutdown)."""
        if not self._pending:
            return None
        return self._cut()

    def _cut(self) -> List[Transaction]:
        batch = self._pending
        self._pending = []
        self._pending_bytes = 0
        self._first_pending_at = None
        self.batches_cut += 1
        return batch

    def next_timeout_deadline(self) -> Optional[float]:
        """Absolute virtual time at which the pending batch must be cut."""
        if self._first_pending_at is None:
            return None
        return self._first_pending_at + self.config.batch_timeout_s
