"""Pluggable intake scheduling for the ordering service.

Historically the orderer consumed submissions strictly in arrival order:
``submit()`` pushed every transaction straight into the block cutter, so a
tenant flooding the ordering path determined the composition of every
block until its backlog drained.  The intake is now a pluggable
:class:`OrderingScheduler` sitting between ``submit()`` and the cutter:

* :class:`FifoScheduler` — arrival order, byte-for-byte the historical
  behaviour (and the default).
* :class:`FairShareScheduler` — weighted deficit-round-robin over
  per-tenant queues.  Each round every backlogged tenant gets to place
  ``weight`` transactions into the cutter, so a tenant submitting 10x the
  load cannot push the light tenants' transactions to the back of every
  block.

Tenants are recognised from the ledger-key namespace the tenant-prefix
middleware writes (``tenant/<name>/…``); un-namespaced traffic shares the
default ``""`` tenant and therefore one round-robin slot.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Iterable, List, Optional

from repro.common.errors import ConfigurationError
from repro.common.tenancy import tenant_of_key  # noqa: F401 - re-exported
from repro.ledger.transaction import Transaction


def tenant_of_transaction(tx: Transaction) -> str:
    """Best-effort tenant attribution for one submitted transaction.

    The write set names the ledger keys authoritatively; proposals without
    writes (unusual for the ordering path) fall back to the first
    chaincode argument, which is the key for every ``set``-shaped invoke.
    """
    rw_set = getattr(tx, "rw_set", None)
    if rw_set is not None and rw_set.writes:
        return tenant_of_key(rw_set.writes[0].key)
    if tx.args:
        return tenant_of_key(tx.args[0])
    return ""


class OrderingScheduler:
    """Decides the order in which submitted transactions reach the cutter."""

    name = "scheduler"

    def enqueue(self, tx: Transaction, now: float = 0.0) -> None:
        raise NotImplementedError

    def next_transaction(self) -> Optional[Transaction]:
        """The next transaction to feed the block cutter (``None`` = empty)."""
        raise NotImplementedError

    @property
    def pending(self) -> int:
        raise NotImplementedError

    def drain(self) -> List[Transaction]:
        """Remove and return everything still queued (scheduler order)."""
        drained: List[Transaction] = []
        while True:
            tx = self.next_transaction()
            if tx is None:
                return drained
            drained.append(tx)

    def pending_by_tenant(self) -> Dict[str, int]:
        """Backlog per tenant (introspection for benches and tests)."""
        return {}


class FifoScheduler(OrderingScheduler):
    """Strict arrival order — the historical orderer intake."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: Deque[Transaction] = deque()

    def enqueue(self, tx: Transaction, now: float = 0.0) -> None:
        self._queue.append(tx)

    def next_transaction(self) -> Optional[Transaction]:
        if not self._queue:
            return None
        return self._queue.popleft()

    @property
    def pending(self) -> int:
        return len(self._queue)

    def pending_by_tenant(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for tx in self._queue:
            tenant = tenant_of_transaction(tx)
            counts[tenant] = counts.get(tenant, 0) + 1
        return counts


class FairShareScheduler(OrderingScheduler):
    """Weighted deficit-round-robin over per-tenant intake queues.

    Every backlogged tenant holds a credit counter.  Serving a transaction
    costs one credit; when the tenant at the head of the round-robin ring
    is out of credit it is recharged by its weight and rotated to the
    back.  With equal weights the block cutter therefore interleaves
    tenants 1:1 regardless of backlog ratios; a weight of 2 buys a tenant
    two slots per round and a weight of 0.5 one slot every other round
    (the recharge *accumulates*, classic DRR, so fractional weights make
    progress instead of starving).  An idle tenant leaves the ring and
    forfeits its credit, so nobody saves up a burst allowance.
    """

    name = "fair-share"

    def __init__(
        self,
        weights: Optional[Dict[str, float]] = None,
        default_weight: float = 1.0,
    ) -> None:
        if default_weight <= 0:
            raise ConfigurationError("default_weight must be positive")
        for tenant, weight in (weights or {}).items():
            if weight <= 0:
                raise ConfigurationError(
                    f"scheduler weight for tenant {tenant!r} must be positive"
                )
        self.weights = dict(weights or {})
        self.default_weight = default_weight
        #: Per-tenant FIFO queues, in tenant-arrival order.
        self._queues: "OrderedDict[str, Deque[Transaction]]" = OrderedDict()
        #: Round-robin ring of tenants with a backlog.
        self._ring: Deque[str] = deque()
        self._credit: Dict[str, float] = {}
        #: Transactions served per tenant (fairness introspection).
        self.served: Dict[str, int] = {}

    def weight_of(self, tenant: str) -> float:
        return self.weights.get(tenant, self.default_weight)

    def enqueue(self, tx: Transaction, now: float = 0.0) -> None:
        tenant = tenant_of_transaction(tx)
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        if not queue:
            # Tenant (re)joins the ring with a fresh turn's worth of credit.
            self._ring.append(tenant)
            self._credit[tenant] = self.weight_of(tenant)
        queue.append(tx)

    def next_transaction(self) -> Optional[Transaction]:
        while self._ring:
            tenant = self._ring[0]
            queue = self._queues[tenant]
            if not queue:  # pragma: no cover - ring invariant guard
                self._ring.popleft()
                self._credit.pop(tenant, None)
                continue
            if self._credit[tenant] >= 1.0:
                self._credit[tenant] -= 1.0
                tx = queue.popleft()
                self.served[tenant] = self.served.get(tenant, 0) + 1
                if not queue:
                    self._ring.popleft()
                    self._credit.pop(tenant, None)
                return tx
            # Turn exhausted: recharge (accumulating, so sub-1 weights
            # eventually reach a full slot) and rotate to the ring's back.
            self._credit[tenant] += self.weight_of(tenant)
            self._ring.rotate(-1)
        return None

    @property
    def pending(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def pending_by_tenant(self) -> Dict[str, int]:
        return {
            tenant: len(queue)
            for tenant, queue in self._queues.items()
            if queue
        }


#: Scheduler names accepted by configs and the bench CLI.
SCHEDULER_NAMES = ("fifo", "fair-share")


def make_scheduler(
    name: str,
    weights: Optional[Dict[str, float]] = None,
) -> OrderingScheduler:
    """Instantiate a scheduler by its config name."""
    if name == "fifo":
        return FifoScheduler()
    if name == "fair-share":
        return FairShareScheduler(weights=weights)
    raise ConfigurationError(
        f"unknown ordering scheduler {name!r} (choose from {SCHEDULER_NAMES})"
    )


def adopt_backlog(old: OrderingScheduler, new: OrderingScheduler) -> None:
    """Move any queued transactions from ``old`` into ``new`` on a swap."""
    for tx in old.drain():
        new.enqueue(tx)


def interleave_positions(txs: Iterable[Transaction]) -> Dict[str, List[int]]:
    """Positions each tenant's transactions occupy in an ordered stream.

    A test/bench helper: feed it the transactions of the cut blocks in
    order and it returns, per tenant, the global positions served — the
    raw material for starvation assertions.
    """
    positions: Dict[str, List[int]] = {}
    for index, tx in enumerate(txs):
        positions.setdefault(tenant_of_transaction(tx), []).append(index)
    return positions
