"""Raft consensus for the ordering service.

A compact but functionally complete Raft implementation: leader election
with randomized timeouts, log replication via AppendEntries, commit-index
advancement on majority match, and term-based safety checks.  Nodes talk
to each other through the simulated :class:`~repro.network.fabric.NetworkFabric`
and are driven entirely by the discrete-event engine, so elections and
replication interleave deterministically with the rest of the system.

The :class:`RaftOrderingService` uses a Raft cluster to order transaction
batches: the batch is proposed to the leader, replicated, and turned into
a block when its log entry commits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.common.errors import OrderingError
from repro.common.metrics import MetricsRegistry
from repro.consensus.base import OrderingService
from repro.consensus.batching import BatchConfig
from repro.consensus.scheduler import OrderingScheduler
from repro.ledger.transaction import Transaction
from repro.network.fabric import Message, NetworkFabric
from repro.simulation.engine import SimulationEngine
from repro.simulation.randomness import DeterministicRandom


class RaftState(enum.Enum):
    """The three Raft roles."""

    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass
class LogEntry:
    """A replicated log entry carrying an opaque payload (a tx batch)."""

    term: int
    index: int
    payload: Any
    committed: bool = False


@dataclass
class RaftConfig:
    """Raft timing parameters (seconds of virtual time)."""

    election_timeout_min_s: float = 0.150
    election_timeout_max_s: float = 0.300
    heartbeat_interval_s: float = 0.050
    message_size_bytes: int = 512


CommitCallback = Callable[[LogEntry], None]


class RaftNode:
    """One member of a Raft cluster."""

    def __init__(
        self,
        node_id: str,
        peers: List[str],
        engine: SimulationEngine,
        network: NetworkFabric,
        config: Optional[RaftConfig] = None,
        rng: Optional[DeterministicRandom] = None,
    ) -> None:
        self.node_id = node_id
        self.peers = [p for p in peers if p != node_id]
        self.engine = engine
        self.network = network
        self.config = config or RaftConfig()
        self._rng = rng or DeterministicRandom(101)

        # Persistent state.
        self.current_term = 0
        self.voted_for: Optional[str] = None
        self.log: List[LogEntry] = []

        # Volatile state.
        self.state = RaftState.FOLLOWER
        self.commit_index = -1
        self.last_applied = -1
        self.leader_id: Optional[str] = None

        # Leader state.
        self.next_index: Dict[str, int] = {}
        self.match_index: Dict[str, int] = {}

        self._votes_received: set = set()
        self._election_event = None
        self._heartbeat_event = None
        self._commit_callbacks: List[CommitCallback] = []

        self.elections_started = 0
        self.entries_committed = 0

        self.network.register_node(node_id, handler=self._on_message)

    # ----------------------------------------------------------- public API
    def on_commit(self, callback: CommitCallback) -> None:
        """Register a callback invoked for every newly committed entry."""
        self._commit_callbacks.append(callback)

    def start(self) -> None:
        """Arm the first election timeout."""
        self._reset_election_timer()

    @property
    def is_leader(self) -> bool:
        return self.state is RaftState.LEADER

    @property
    def last_log_index(self) -> int:
        return len(self.log) - 1

    @property
    def last_log_term(self) -> int:
        return self.log[-1].term if self.log else 0

    def propose(self, payload: Any) -> LogEntry:
        """Append a new entry to the leader's log and start replicating it."""
        if not self.is_leader:
            raise OrderingError(f"{self.node_id} is not the Raft leader")
        entry = LogEntry(term=self.current_term, index=len(self.log), payload=payload)
        self.log.append(entry)
        self.match_index[self.node_id] = entry.index
        self._broadcast_append_entries()
        # A single-node cluster commits immediately.
        self._advance_commit_index()
        return entry

    # ------------------------------------------------------------ timers
    def _reset_election_timer(self) -> None:
        if self._election_event is not None:
            self._election_event.cancel()
        timeout = self._rng.uniform(
            self.config.election_timeout_min_s, self.config.election_timeout_max_s
        )
        # Daemon event: timers keep Raft alive while the simulation runs but
        # must not prevent run_until_idle() from ever terminating.
        self._election_event = self.engine.schedule_in(
            timeout, self._on_election_timeout,
            label=f"raft:{self.node_id}:election", daemon=True,
        )

    def _start_heartbeats(self) -> None:
        if self._heartbeat_event is not None:
            self._heartbeat_event.cancel()
        self._heartbeat_event = self.engine.schedule_in(
            self.config.heartbeat_interval_s,
            self._on_heartbeat,
            label=f"raft:{self.node_id}:heartbeat", daemon=True,
        )

    def _on_heartbeat(self) -> None:
        if self.state is not RaftState.LEADER:
            return
        self._broadcast_append_entries()
        self._start_heartbeats()

    # ---------------------------------------------------------- elections
    def _on_election_timeout(self) -> None:
        if self.state is RaftState.LEADER:
            return
        self._become_candidate()

    def _become_candidate(self) -> None:
        self.state = RaftState.CANDIDATE
        self.current_term += 1
        self.voted_for = self.node_id
        self._votes_received = {self.node_id}
        self.elections_started += 1
        self._reset_election_timer()
        request = {
            "term": self.current_term,
            "candidate_id": self.node_id,
            "last_log_index": self.last_log_index,
            "last_log_term": self.last_log_term,
        }
        for peer in self.peers:
            self._send(peer, "raft.request_vote", request)
        if self._has_majority(len(self._votes_received)):
            self._become_leader()

    def _become_leader(self) -> None:
        self.state = RaftState.LEADER
        self.leader_id = self.node_id
        self.next_index = {peer: len(self.log) for peer in self.peers}
        self.match_index = {peer: -1 for peer in self.peers}
        self.match_index[self.node_id] = self.last_log_index
        if self._election_event is not None:
            self._election_event.cancel()
            self._election_event = None
        self._broadcast_append_entries()
        self._start_heartbeats()

    def _become_follower(self, term: int, leader_id: Optional[str] = None) -> None:
        self.state = RaftState.FOLLOWER
        self.current_term = term
        self.voted_for = None
        self.leader_id = leader_id
        if self._heartbeat_event is not None:
            self._heartbeat_event.cancel()
            self._heartbeat_event = None
        self._reset_election_timer()

    def _has_majority(self, count: int) -> bool:
        cluster_size = len(self.peers) + 1
        return count > cluster_size // 2

    # -------------------------------------------------------- replication
    def _broadcast_append_entries(self) -> None:
        for peer in self.peers:
            self._send_append_entries(peer)

    def _send_append_entries(self, peer: str) -> None:
        next_idx = self.next_index.get(peer, len(self.log))
        prev_index = next_idx - 1
        prev_term = self.log[prev_index].term if prev_index >= 0 else 0
        entries = [
            {"term": e.term, "index": e.index, "payload": e.payload}
            for e in self.log[next_idx:]
        ]
        request = {
            "term": self.current_term,
            "leader_id": self.node_id,
            "prev_log_index": prev_index,
            "prev_log_term": prev_term,
            "entries": entries,
            "leader_commit": self.commit_index,
        }
        self._send(peer, "raft.append_entries", request)

    def _advance_commit_index(self) -> None:
        if self.state is not RaftState.LEADER:
            return
        for index in range(len(self.log) - 1, self.commit_index, -1):
            if self.log[index].term != self.current_term:
                continue
            replicas = sum(
                1 for node, match in self.match_index.items() if match >= index
            )
            if self._has_majority(replicas):
                self._commit_up_to(index)
                break

    def _commit_up_to(self, index: int) -> None:
        while self.commit_index < index:
            self.commit_index += 1
            entry = self.log[self.commit_index]
            entry.committed = True
            self.entries_committed += 1
            for callback in self._commit_callbacks:
                callback(entry)

    # ----------------------------------------------------------- messaging
    def _send(self, destination: str, msg_type: str, payload: Dict[str, Any]) -> None:
        try:
            self.network.send_later(
                self.node_id,
                destination,
                msg_type,
                payload,
                size_bytes=self.config.message_size_bytes,
            )
        except Exception:  # noqa: BLE001 - unreachable peers are simply skipped
            return

    def _on_message(self, message: Message) -> None:
        handlers = {
            "raft.request_vote": self._handle_request_vote,
            "raft.request_vote_reply": self._handle_request_vote_reply,
            "raft.append_entries": self._handle_append_entries,
            "raft.append_entries_reply": self._handle_append_entries_reply,
        }
        handler = handlers.get(message.msg_type)
        if handler is not None:
            handler(message.source, message.payload)

    def _handle_request_vote(self, source: str, request: Dict[str, Any]) -> None:
        term = request["term"]
        if term > self.current_term:
            self._become_follower(term)
        granted = False
        if term >= self.current_term and self.voted_for in (None, request["candidate_id"]):
            log_ok = request["last_log_term"] > self.last_log_term or (
                request["last_log_term"] == self.last_log_term
                and request["last_log_index"] >= self.last_log_index
            )
            if log_ok:
                granted = True
                self.voted_for = request["candidate_id"]
                self._reset_election_timer()
        self._send(
            source,
            "raft.request_vote_reply",
            {"term": self.current_term, "granted": granted},
        )

    def _handle_request_vote_reply(self, source: str, reply: Dict[str, Any]) -> None:
        if self.state is not RaftState.CANDIDATE:
            return
        if reply["term"] > self.current_term:
            self._become_follower(reply["term"])
            return
        if reply.get("granted"):
            self._votes_received.add(source)
            if self._has_majority(len(self._votes_received)):
                self._become_leader()

    def _handle_append_entries(self, source: str, request: Dict[str, Any]) -> None:
        term = request["term"]
        if term < self.current_term:
            self._send(
                source,
                "raft.append_entries_reply",
                {"term": self.current_term, "success": False, "match_index": -1},
            )
            return
        if term > self.current_term or self.state is not RaftState.FOLLOWER:
            self._become_follower(term, leader_id=request["leader_id"])
        self.leader_id = request["leader_id"]
        self._reset_election_timer()

        prev_index = request["prev_log_index"]
        prev_term = request["prev_log_term"]
        if prev_index >= 0:
            if prev_index >= len(self.log) or self.log[prev_index].term != prev_term:
                self._send(
                    source,
                    "raft.append_entries_reply",
                    {"term": self.current_term, "success": False, "match_index": -1},
                )
                return

        # Append / overwrite entries.
        insert_at = prev_index + 1
        for offset, raw in enumerate(request["entries"]):
            index = insert_at + offset
            entry = LogEntry(term=raw["term"], index=index, payload=raw["payload"])
            if index < len(self.log):
                if self.log[index].term != entry.term:
                    del self.log[index:]
                    self.log.append(entry)
            else:
                self.log.append(entry)

        leader_commit = request["leader_commit"]
        if leader_commit > self.commit_index:
            self._commit_follower(min(leader_commit, len(self.log) - 1))

        self._send(
            source,
            "raft.append_entries_reply",
            {
                "term": self.current_term,
                "success": True,
                "match_index": len(self.log) - 1,
            },
        )

    def _commit_follower(self, index: int) -> None:
        while self.commit_index < index:
            self.commit_index += 1
            entry = self.log[self.commit_index]
            entry.committed = True
            self.entries_committed += 1

    def _handle_append_entries_reply(self, source: str, reply: Dict[str, Any]) -> None:
        if self.state is not RaftState.LEADER:
            return
        if reply["term"] > self.current_term:
            self._become_follower(reply["term"])
            return
        if reply["success"]:
            self.match_index[source] = max(
                self.match_index.get(source, -1), reply["match_index"]
            )
            self.next_index[source] = self.match_index[source] + 1
            self._advance_commit_index()
        else:
            self.next_index[source] = max(0, self.next_index.get(source, 1) - 1)
            self._send_append_entries(source)


class RaftOrderingService(OrderingService):
    """Ordering service backed by a Raft cluster.

    Cut batches are proposed to the current Raft leader; the block is
    assembled and delivered when the corresponding log entry commits on the
    leader.  If no leader exists yet the batch is queued and re-proposed
    once an election completes.
    """

    def __init__(
        self,
        name: str,
        engine: SimulationEngine,
        network: NetworkFabric,
        cluster_size: int = 3,
        batch_config: Optional[BatchConfig] = None,
        raft_config: Optional[RaftConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        rng: Optional[DeterministicRandom] = None,
        scheduler: Optional[OrderingScheduler] = None,
        intake_interval_s: float = 0.0,
    ) -> None:
        super().__init__(
            name,
            engine,
            batch_config,
            metrics,
            scheduler=scheduler,
            intake_interval_s=intake_interval_s,
        )
        if cluster_size < 1:
            raise OrderingError("raft cluster size must be >= 1")
        rng = rng or DeterministicRandom(303)
        node_ids = [f"{name}-raft-{i}" for i in range(cluster_size)]
        self.nodes: List[RaftNode] = [
            RaftNode(
                node_id=node_id,
                peers=node_ids,
                engine=engine,
                network=network,
                config=raft_config,
                rng=rng.fork(node_id),
            )
            for node_id in node_ids
        ]
        self._pending_batches: List[List[Transaction]] = []
        self._delivered_entries: set = set()
        for node in self.nodes:
            node.on_commit(self._on_entry_committed)
            node.start()

    # ------------------------------------------------------------- plumbing
    @property
    def leader(self) -> Optional[RaftNode]:
        for node in self.nodes:
            if node.is_leader:
                return node
        return None

    def wait_for_leader(self, timeout_s: float = 5.0) -> RaftNode:
        """Run the simulation until a leader is elected (or fail)."""
        deadline = self.engine.now + timeout_s
        while self.leader is None and self.engine.now < deadline:
            if not self.engine.step():
                break
        leader = self.leader
        if leader is None:
            raise OrderingError("raft cluster failed to elect a leader")
        return leader

    def _order_batch(self, batch: List[Transaction]) -> None:
        leader = self.leader
        if leader is None:
            self._pending_batches.append(batch)
            # Try again shortly; an election should complete within a few
            # election timeouts.
            self.engine.schedule_in(0.05, self._drain_pending, label=f"{self.name}:retry-batch")
            return
        tx_ids = [tx.tx_id for tx in batch]
        self._batch_by_key(tx_ids, batch)
        leader.propose({"tx_ids": tx_ids})

    def _batch_by_key(self, tx_ids: List[str], batch: List[Transaction]) -> None:
        if not hasattr(self, "_batches_by_key"):
            self._batches_by_key: Dict[tuple, List[Transaction]] = {}
        self._batches_by_key[tuple(tx_ids)] = batch

    def _drain_pending(self) -> None:
        if not self._pending_batches:
            return
        leader = self.leader
        if leader is None:
            self.engine.schedule_in(0.05, self._drain_pending, label=f"{self.name}:retry-batch")
            return
        pending, self._pending_batches = self._pending_batches, []
        for batch in pending:
            self._order_batch(batch)

    def _on_entry_committed(self, entry: LogEntry) -> None:
        key = (entry.index, entry.term)
        if key in self._delivered_entries:
            return
        tx_ids = tuple(entry.payload.get("tx_ids", ()))
        batch = getattr(self, "_batches_by_key", {}).pop(tx_ids, None)
        if batch is None:
            # Commit callback fired on a node that does not hold the batch
            # payload (followers); only the proposing service delivers.
            return
        self._delivered_entries.add(key)
        block = self._assemble_block(batch)
        self._deliver_block(block)
