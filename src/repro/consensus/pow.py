"""Proof-of-Work engine for the public-blockchain baseline.

HyperProv's related-work comparison (ProvChain [9] and public-blockchain
provenance in general) motivates the claim that permissioned blockchains
need far fewer resources.  The ProvChain-style baseline in
:mod:`repro.baselines` anchors provenance records by mining blocks with
this engine.  Two modes are provided:

* :meth:`mine` — real nonce search (small difficulties, used in tests to
  demonstrate the mechanism),
* :meth:`expected_mining_time` / :meth:`sample_mining_time` — analytic /
  sampled mining time for a device's hash rate, used by the simulator so
  the baseline benchmark does not have to grind real hashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.hashing import sha256_hex
from repro.simulation.randomness import DeterministicRandom


@dataclass(frozen=True)
class PowBlockResult:
    """Outcome of a successful mining run."""

    nonce: int
    digest: str
    attempts: int


class ProofOfWorkEngine:
    """Nonce-search proof of work over SHA-256 with a leading-zero-bit target."""

    def __init__(self, difficulty_bits: int = 16, rng: Optional[DeterministicRandom] = None) -> None:
        if not 1 <= difficulty_bits <= 64:
            raise ConfigurationError("difficulty_bits must be between 1 and 64")
        self.difficulty_bits = difficulty_bits
        self._rng = rng or DeterministicRandom(999)

    # ----------------------------------------------------------- real search
    def _meets_target(self, digest_hex: str) -> bool:
        value = int(digest_hex, 16)
        return value >> (256 - self.difficulty_bits) == 0

    def mine(self, payload: bytes, max_attempts: int = 5_000_000) -> PowBlockResult:
        """Search for a nonce such that ``H(payload || nonce)`` meets the target."""
        for nonce in range(max_attempts):
            digest = sha256_hex(payload + nonce.to_bytes(8, "big"))
            if self._meets_target(digest):
                return PowBlockResult(nonce=nonce, digest=digest, attempts=nonce + 1)
        raise ConfigurationError(
            f"no nonce found within {max_attempts} attempts at {self.difficulty_bits} bits"
        )

    def verify(self, payload: bytes, nonce: int) -> bool:
        """Check a previously mined nonce."""
        return self._meets_target(sha256_hex(payload + nonce.to_bytes(8, "big")))

    # ------------------------------------------------------------ simulation
    @property
    def expected_attempts(self) -> float:
        """Mean number of hash evaluations to find a valid nonce."""
        return float(2 ** self.difficulty_bits)

    def expected_mining_time(self, hash_rate_per_s: float) -> float:
        """Mean mining time for a device hashing at ``hash_rate_per_s``."""
        if hash_rate_per_s <= 0:
            raise ConfigurationError("hash rate must be positive")
        return self.expected_attempts / hash_rate_per_s

    def sample_mining_time(self, hash_rate_per_s: float) -> Tuple[float, float]:
        """Sample one mining duration (geometric search ≈ exponential time).

        Returns ``(duration_s, energy_weight)`` where ``energy_weight`` is
        the fraction of the duration spent at full CPU utilization (always
        1.0 for PoW — the miner pegs the CPU, which is exactly the contrast
        with HyperProv that Fig. 3 highlights).
        """
        mean = self.expected_mining_time(hash_rate_per_s)
        return self._rng.exponential(mean), 1.0
